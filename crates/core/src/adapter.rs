//! The Concurrency Adapter: actuating soft-resource recommendations.

use crate::{ResourceBounds, SoftResource};
use microsim::World;
use sim_core::SimTime;

/// Applies SCG recommendations to the world's soft-resource knobs, with
/// hysteresis (small recommendation wobbles are ignored) and gradual
/// upward exploration when the model reports no knee yet — the paper's
/// "gradually increase the allocation to find a new optimal value" (§3.2).
#[derive(Debug, Clone)]
pub struct ConcurrencyAdapter {
    /// Minimum relative change that triggers reconfiguration.
    hysteresis: f64,
    /// Multiplicative exploration step.
    explore_factor: f64,
    /// Largest relative shrink applied per period. Growing is immediate
    /// (starved pools must recover fast), shrinking is damped so a
    /// momentary load trough does not leave the pool under-allocated when
    /// the next surge arrives — the asymmetry every production concurrency
    /// limiter (e.g. Netflix's) uses.
    max_shrink: f64,
}

impl Default for ConcurrencyAdapter {
    fn default() -> Self {
        ConcurrencyAdapter {
            hysteresis: 0.15,
            explore_factor: 2.0,
            max_shrink: 0.3,
        }
    }
}

impl ConcurrencyAdapter {
    /// Creates an adapter.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` is negative, `explore_factor ≤ 1`, or
    /// `max_shrink` outside `(0, 1]`.
    pub fn new(hysteresis: f64, explore_factor: f64, max_shrink: f64) -> Self {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        assert!(explore_factor > 1.0, "exploration must grow the pool");
        assert!(
            max_shrink > 0.0 && max_shrink <= 1.0,
            "invalid shrink bound"
        );
        ConcurrencyAdapter {
            hysteresis,
            explore_factor,
            max_shrink,
        }
    }

    /// The resource's current per-replica setting.
    pub fn current_setting(world: &World, resource: SoftResource) -> usize {
        match resource {
            SoftResource::ThreadPool { service } => world.thread_limit(service),
            SoftResource::ConnPool { caller, target } => {
                world.conn_limit(caller, target).unwrap_or(usize::MAX)
            }
        }
    }

    /// Translates a *monitored-service per-replica* optimum into the knob's
    /// per-replica value. A thread pool is one-to-one. A connection pool is
    /// held by the caller: the target's aggregate optimal concurrency is
    /// `optimal × target_replicas`, split across caller replicas — this is
    /// how Sora arrives at "120 connections for 4 Post Storage replicas" in
    /// the paper's Fig. 12.
    pub fn desired_setting(world: &World, resource: SoftResource, optimal: usize) -> usize {
        match resource {
            SoftResource::ThreadPool { .. } => optimal,
            SoftResource::ConnPool { caller, target } => {
                let callers = world.ready_replicas(caller).len().max(1);
                let targets = world.ready_replicas(target).len().max(1);
                (optimal * targets).div_ceil(callers)
            }
        }
    }

    /// Applies an estimate. Returns the new setting if reconfiguration
    /// happened, `None` if the change fell inside the hysteresis band.
    pub fn apply_estimate(
        &mut self,
        world: &mut World,
        resource: SoftResource,
        bounds: ResourceBounds,
        optimal: usize,
        _now: SimTime,
    ) -> Option<usize> {
        let mut desired = bounds.clamp(Self::desired_setting(world, resource, optimal));
        let current = Self::current_setting(world, resource);
        if desired < current {
            // Damped shrink: approach the recommendation gradually.
            let floor = ((current as f64) * (1.0 - self.max_shrink)).floor() as usize;
            desired = desired.max(floor).max(bounds.min);
        }
        let rel = (desired as f64 - current as f64).abs() / current.max(1) as f64;
        if desired == current || rel < self.hysteresis {
            return None;
        }
        self.set(world, resource, desired);
        Some(desired)
    }

    /// Raises the allocation one exploration step (when the model saw no
    /// knee and the pool shows saturation). Returns the new setting if it
    /// grew.
    pub fn explore(
        &mut self,
        world: &mut World,
        resource: SoftResource,
        bounds: ResourceBounds,
        _now: SimTime,
    ) -> Option<usize> {
        let current = Self::current_setting(world, resource);
        if current == usize::MAX {
            return None; // unlimited pool: nothing to explore
        }
        let grown = ((current as f64 * self.explore_factor).ceil() as usize).max(current + 1);
        let desired = bounds.clamp(grown);
        if desired <= current {
            return None; // already at the ceiling
        }
        self.set(world, resource, desired);
        Some(desired)
    }

    /// True when the resource currently shows queued demand (its gate is
    /// the active constraint) — the precondition for exploration.
    pub fn is_saturated(world: &World, resource: SoftResource) -> bool {
        match resource {
            SoftResource::ThreadPool { service } => world.queued_requests(service) > 0,
            SoftResource::ConnPool { caller, target } => world.conn_waiting(caller, target) > 0,
        }
    }

    fn set(&self, world: &mut World, resource: SoftResource, value: usize) {
        match resource {
            SoftResource::ThreadPool { service } => world.set_thread_limit(service, value),
            SoftResource::ConnPool { caller, target } => {
                world.set_conn_limit(caller, target, value)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::{RequestTypeId, ServiceId};

    fn world() -> (World, ServiceId, ServiceId) {
        let mut w = World::new(WorldConfig::default(), SimRng::seed_from(1));
        let rt = RequestTypeId(0);
        let db_id = ServiceId(1);
        let front = w.add_service(ServiceSpec::new("front").threads(10).conns(db_id, 5).on(
            rt,
            Behavior::tier(Dist::constant_ms(1), db_id, Dist::constant_ms(1)),
        ));
        w.add_service(ServiceSpec::new("db").on(rt, Behavior::leaf(Dist::constant_ms(2))));
        w.add_request_type("r", front);
        for svc in [front, db_id] {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        (w, front, db_id)
    }

    #[test]
    fn apply_respects_hysteresis() {
        let (mut w, front, _) = world();
        let mut a = ConcurrencyAdapter::default();
        let tp = SoftResource::ThreadPool { service: front };
        let b = ResourceBounds { min: 1, max: 100 };
        // 10 → 11 is an 10% change: inside the 15% band.
        assert_eq!(a.apply_estimate(&mut w, tp, b, 11, SimTime::ZERO), None);
        assert_eq!(w.thread_limit(front), 10);
        // 10 → 30 applies immediately (growth is never damped).
        assert_eq!(a.apply_estimate(&mut w, tp, b, 30, SimTime::ZERO), Some(30));
        assert_eq!(w.thread_limit(front), 30);
        // A recommendation far below shrinks at most 30 % per call.
        assert_eq!(a.apply_estimate(&mut w, tp, b, 3, SimTime::ZERO), Some(21));
        assert_eq!(a.apply_estimate(&mut w, tp, b, 3, SimTime::ZERO), Some(14));
    }

    #[test]
    fn apply_clamps_to_bounds() {
        let (mut w, front, _) = world();
        let mut a = ConcurrencyAdapter::default();
        let tp = SoftResource::ThreadPool { service: front };
        let b = ResourceBounds { min: 4, max: 16 };
        assert_eq!(
            a.apply_estimate(&mut w, tp, b, 500, SimTime::ZERO),
            Some(16)
        );
        // Shrinking respects both the damping and, eventually, the floor.
        assert_eq!(a.apply_estimate(&mut w, tp, b, 1, SimTime::ZERO), Some(11));
        assert_eq!(a.apply_estimate(&mut w, tp, b, 1, SimTime::ZERO), Some(7));
        assert_eq!(a.apply_estimate(&mut w, tp, b, 1, SimTime::ZERO), Some(4));
    }

    #[test]
    fn conn_pool_scales_with_target_replicas() {
        let (mut w, front, db) = world();
        // 3 more db replicas → 4 total, 1 caller replica.
        for _ in 0..3 {
            let pod = w.add_replica(db).unwrap();
            w.make_ready(pod);
        }
        let cp = SoftResource::ConnPool {
            caller: front,
            target: db,
        };
        // optimal 30 per db replica × 4 replicas / 1 caller = 120.
        assert_eq!(ConcurrencyAdapter::desired_setting(&w, cp, 30), 120);
        let mut a = ConcurrencyAdapter::default();
        let applied = a.apply_estimate(
            &mut w,
            cp,
            ResourceBounds { min: 1, max: 512 },
            30,
            SimTime::ZERO,
        );
        assert_eq!(applied, Some(120));
        assert_eq!(w.conn_limit(front, db), Some(120));
    }

    #[test]
    fn exploration_grows_geometrically_to_the_ceiling() {
        let (mut w, front, _) = world();
        let mut a = ConcurrencyAdapter::default();
        let tp = SoftResource::ThreadPool { service: front };
        let b = ResourceBounds { min: 1, max: 20 };
        assert_eq!(a.explore(&mut w, tp, b, SimTime::ZERO), Some(20)); // 10×2 clamped
        assert_eq!(a.explore(&mut w, tp, b, SimTime::ZERO), None); // at ceiling
    }

    #[test]
    fn saturation_detection() {
        let (mut w, front, db) = world();
        let tp = SoftResource::ThreadPool { service: front };
        let cp = SoftResource::ConnPool {
            caller: front,
            target: db,
        };
        assert!(!ConcurrencyAdapter::is_saturated(&w, tp));
        assert!(!ConcurrencyAdapter::is_saturated(&w, cp));
        // Saturate the 10-thread front with slow backpressure: shrink the
        // pool to 1 and flood.
        w.set_thread_limit(front, 1);
        let rt = RequestTypeId(0);
        for i in 0..50 {
            w.inject_at(SimTime::from_millis(i), rt);
        }
        w.run_until(SimTime::from_millis(60));
        assert!(ConcurrencyAdapter::is_saturated(&w, tp));
    }
}
