//! **Sora** — the latency-sensitive soft-resource adaptation framework
//! (the paper's §4).
//!
//! Sora sits next to any hardware-only autoscaler and re-adapts *soft*
//! resources — thread pools and connection pools — whenever the hardware
//! picture or the workload changes. Its control loop mirrors Fig. 8 of the
//! paper:
//!
//! 1. the [`Monitor`] collects system-level metrics (pod CPU utilisation)
//!    and pulls traces from the warehouse;
//! 2. the critical service is localised (utilisation screen + Pearson
//!    correlation, via [`scg::localize_critical_service`]);
//! 3. the end-to-end SLA is propagated along the critical path to obtain
//!    the critical service's response-time threshold
//!    ([`scg::propagate_deadline`]);
//! 4. the [`ConcurrencyEstimator`] builds the concurrency/goodput scatter
//!    and asks the SCG model for the optimal concurrency;
//! 5. the [`ConcurrencyAdapter`] actuates the owning soft resource
//!    (gradually exploring upward when the model reports no knee yet).
//!
//! The same machinery with `latency_aware = false` reproduces ConScale's
//! SCT-based adaptation — used as a baseline in the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod controller;
mod estimator;
mod monitor;
mod probe;
mod resource;
mod sora;

pub use adapter::ConcurrencyAdapter;
pub use controller::{Controller, ControllerStatus, NullController};
pub use estimator::{ConcurrencyEstimator, EstimatorConfig};
pub use monitor::{Monitor, Observation};
pub use probe::UtilizationProbe;
pub use resource::{ResourceBounds, ResourceRegistry, SoftResource};
pub use sora::{SoraConfig, SoraController};
