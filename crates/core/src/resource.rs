//! Tunable soft resources and their registry.

use serde::{Deserialize, Serialize};
use telemetry::ServiceId;

/// A runtime-reconfigurable soft resource, the two generic kinds the paper
/// targets (§4.2, §6): server thread pools and client connection pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SoftResource {
    /// The per-replica server thread pool of `service`.
    ThreadPool {
        /// The service whose thread pool is tuned.
        service: ServiceId,
    },
    /// The per-replica connection pool from `caller` toward `target`
    /// (e.g. Catalogue's DB connections, Home-Timeline's Thrift client
    /// pool to Post Storage).
    ConnPool {
        /// The service holding the pool.
        caller: ServiceId,
        /// The downstream service the pool connects to.
        target: ServiceId,
    },
}

impl SoftResource {
    /// The service whose *in-service concurrency* this resource controls —
    /// the service the SCG model monitors. A thread pool gates its own
    /// service; a connection pool gates the downstream target.
    pub fn monitored_service(&self) -> ServiceId {
        match *self {
            SoftResource::ThreadPool { service } => service,
            SoftResource::ConnPool { target, .. } => target,
        }
    }
}

impl std::fmt::Display for SoftResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoftResource::ThreadPool { service } => write!(f, "threads({service})"),
            SoftResource::ConnPool { caller, target } => {
                write!(f, "conns({caller}→{target})")
            }
        }
    }
}

/// Allocation bounds for one soft resource (per replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceBounds {
    /// Smallest allowed allocation.
    pub min: usize,
    /// Largest allowed allocation (the exploration ceiling).
    pub max: usize,
}

impl Default for ResourceBounds {
    fn default() -> Self {
        ResourceBounds { min: 1, max: 512 }
    }
}

impl ResourceBounds {
    /// Clamps `value` into the bounds.
    pub fn clamp(&self, value: usize) -> usize {
        value.clamp(self.min, self.max)
    }
}

/// The set of soft resources a deployment exposes for runtime tuning,
/// indexed by the service they gate. This encodes the paper's
/// applicability observation (§6): only resources whose owners expose a
/// reconfiguration knob can be adapted, so registration is explicit.
#[derive(Debug, Clone, Default)]
pub struct ResourceRegistry {
    entries: Vec<(SoftResource, ResourceBounds)>,
}

impl ResourceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ResourceRegistry::default()
    }

    /// Registers a resource with bounds. Returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if the resource is already registered or bounds are empty.
    pub fn with(mut self, resource: SoftResource, bounds: ResourceBounds) -> Self {
        assert!(
            bounds.min >= 1 && bounds.min <= bounds.max,
            "invalid bounds {bounds:?}"
        );
        assert!(
            !self.entries.iter().any(|(r, _)| *r == resource),
            "{resource} registered twice"
        );
        self.entries.push((resource, bounds));
        self
    }

    /// The resource gating `service`'s concurrency, if registered.
    pub fn for_monitored_service(
        &self,
        service: ServiceId,
    ) -> Option<(SoftResource, ResourceBounds)> {
        self.entries
            .iter()
            .find(|(r, _)| r.monitored_service() == service)
            .copied()
    }

    /// All registered resources.
    pub fn iter(&self) -> impl Iterator<Item = &(SoftResource, ResourceBounds)> + '_ {
        self.entries.iter()
    }

    /// Number of registered resources.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitored_service_of_each_kind() {
        let tp = SoftResource::ThreadPool {
            service: ServiceId(1),
        };
        let cp = SoftResource::ConnPool {
            caller: ServiceId(1),
            target: ServiceId(2),
        };
        assert_eq!(tp.monitored_service(), ServiceId(1));
        assert_eq!(cp.monitored_service(), ServiceId(2));
        assert_eq!(tp.to_string(), "threads(svc-1)");
        assert_eq!(cp.to_string(), "conns(svc-1→svc-2)");
    }

    #[test]
    fn registry_lookup() {
        let reg = ResourceRegistry::new()
            .with(
                SoftResource::ThreadPool {
                    service: ServiceId(1),
                },
                ResourceBounds { min: 2, max: 64 },
            )
            .with(
                SoftResource::ConnPool {
                    caller: ServiceId(0),
                    target: ServiceId(3),
                },
                ResourceBounds::default(),
            );
        assert_eq!(reg.len(), 2);
        let (r, b) = reg.for_monitored_service(ServiceId(3)).unwrap();
        assert!(matches!(r, SoftResource::ConnPool { .. }));
        assert_eq!(b, ResourceBounds::default());
        assert!(reg.for_monitored_service(ServiceId(9)).is_none());
    }

    #[test]
    fn bounds_clamp() {
        let b = ResourceBounds { min: 4, max: 10 };
        assert_eq!(b.clamp(1), 4);
        assert_eq!(b.clamp(7), 7);
        assert_eq!(b.clamp(99), 10);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let r = SoftResource::ThreadPool {
            service: ServiceId(0),
        };
        let _ = ResourceRegistry::new()
            .with(r, ResourceBounds::default())
            .with(r, ResourceBounds::default());
    }
}
