//! Per-consumer CPU-utilisation probes.

use microsim::World;
use sim_core::SimTime;
use std::collections::BTreeMap;
use telemetry::ServiceId;

/// Reads per-service CPU utilisation as the delta of the world's cumulative
/// busy counters over elapsed capacity.
///
/// Every monitoring consumer (HPA, VPA, FIRM's monitor, the experiment
/// timeline sampler) owns its *own* probe: the underlying counters are
/// cumulative, so concurrent consumers sampling at different periods never
/// corrupt each other's readings — the same reason production monitors
/// export monotone counters rather than pre-computed rates.
///
/// # Example
///
/// ```
/// use sora_core::UtilizationProbe;
/// let mut probe = UtilizationProbe::new();
/// # use microsim::{World, WorldConfig, ServiceSpec, Behavior};
/// # use sim_core::{Dist, SimRng, SimTime};
/// # let mut world = World::new(WorldConfig::default(), SimRng::seed_from(0));
/// # let svc = world.add_service(ServiceSpec::new("s"));
/// let u = probe.read(&mut world, svc, SimTime::from_secs(1));
/// assert_eq!(u, 0.0); // idle service (no replicas, no busy time)
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilizationProbe {
    marks: BTreeMap<ServiceId, (f64, SimTime)>,
}

impl UtilizationProbe {
    /// Creates a probe with no history (first reads return 0).
    pub fn new() -> Self {
        UtilizationProbe::default()
    }

    /// Mean busy fraction (0..=1 of capacity) of `service` since this
    /// probe's previous read, as of `now`. The first read averages from
    /// time zero.
    pub fn read(&mut self, world: &mut World, service: ServiceId, now: SimTime) -> f64 {
        let busy = world.cpu_busy_core_secs(service);
        let (prev_busy, prev_t) = self
            .marks
            .insert(service, (busy, now))
            .unwrap_or((0.0, SimTime::ZERO));
        let dt = now.saturating_since(prev_t).as_secs_f64();
        let capacity = world.cpu_capacity_cores(service);
        if dt <= 0.0 || capacity <= 0.0 {
            return 0.0;
        }
        ((busy - prev_busy) / (capacity * dt)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn busy_world() -> (World, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(1));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(cluster::Millicores::from_cores(1))
                .threads(8)
                .on(rt, Behavior::leaf(Dist::constant_ms(1_000))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        (w, svc, rt)
    }

    #[test]
    fn probe_measures_busy_fraction() {
        let (mut w, svc, rt) = busy_world();
        let mut probe = UtilizationProbe::new();
        assert_eq!(probe.read(&mut w, svc, SimTime::ZERO), 0.0);
        w.inject_at(t(0), rt); // 1 s of work on 1 core
        w.run_until(t(500));
        let u = probe.read(&mut w, svc, t(500));
        assert!((u - 1.0).abs() < 0.01, "busy half-second: {u}");
        w.run_until(t(2_000));
        let u = probe.read(&mut w, svc, t(2_000));
        // 500 ms busy of 1500 ms elapsed.
        assert!((u - 1.0 / 3.0).abs() < 0.02, "u = {u}");
    }

    #[test]
    fn independent_probes_do_not_interfere() {
        let (mut w, svc, rt) = busy_world();
        let mut fast = UtilizationProbe::new();
        let mut slow = UtilizationProbe::new();
        fast.read(&mut w, svc, SimTime::ZERO);
        slow.read(&mut w, svc, SimTime::ZERO);
        w.inject_at(t(0), rt);
        // The fast probe samples every 100 ms.
        for i in 1..=10u64 {
            w.run_until(t(i * 100));
            fast.read(&mut w, svc, t(i * 100));
        }
        // The slow probe's single 1 s reading is unaffected by them.
        let u = slow.read(&mut w, svc, t(1_000));
        assert!(
            (u - 1.0).abs() < 0.01,
            "slow probe must see the full delta: {u}"
        );
    }
}
