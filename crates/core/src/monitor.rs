//! The Monitoring Module: utilisation sampling and trace analysis.

use crate::UtilizationProbe;
use microsim::World;
use scg::{localize_critical_service, LocalizeConfig};
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;
use telemetry::{per_service_stats, CriticalPathStats, ServiceId};

/// One control period's observation of the system.
#[derive(Debug)]
pub struct Observation {
    /// When the observation was taken.
    pub now: SimTime,
    /// Mean pod CPU busy fraction per service over the elapsed period.
    pub utilization: BTreeMap<ServiceId, f64>,
    /// Critical-path statistics over the analysis window.
    pub path_stats: CriticalPathStats,
}

impl Observation {
    /// The critical service under the given localisation policy, if any.
    pub fn critical_service(&self, config: &LocalizeConfig) -> Option<ServiceId> {
        localize_critical_service(&self.path_stats, &self.utilization, config)
    }
}

/// Collects system-level metrics (CPU utilisation via the per-pod monitors)
/// and application-level traces (from the warehouse) each control period —
/// the paper's Monitoring Module backed by cAdvisor + Jaeger agents.
#[derive(Debug, Clone)]
pub struct Monitor {
    /// How much trace history feeds critical-path analysis.
    window: SimDuration,
    probe: UtilizationProbe,
}

impl Monitor {
    /// Creates a monitor analysing the trailing `window` of traces.
    pub fn new(window: SimDuration) -> Self {
        Monitor {
            window,
            probe: UtilizationProbe::new(),
        }
    }

    /// The analysis window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Takes one observation at `now`. Utilisation is averaged over the
    /// time since this monitor's previous observation.
    pub fn observe(&mut self, world: &mut World, now: SimTime) -> Observation {
        let mut utilization = BTreeMap::new();
        for idx in 0..world.service_count() {
            let service = ServiceId(idx as u32);
            utilization.insert(service, self.probe.read(world, service, now));
        }
        let from = now.saturating_since(SimTime::ZERO);
        let from = if from > self.window {
            SimTime::ZERO + (from - self.window)
        } else {
            SimTime::ZERO
        };
        let path_stats = per_service_stats(world.warehouse().iter_window(from, now));
        Observation {
            now,
            utilization,
            path_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// front → worker chain where the worker dominates latency.
    fn world() -> (World, telemetry::RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(1));
        let rt = telemetry::RequestTypeId(0);
        let worker_id = ServiceId(1);
        let front = w.add_service(ServiceSpec::new("front").on(
            rt,
            Behavior::tier(Dist::constant_ms(1), worker_id, Dist::constant_ms(1)),
        ));
        w.add_service(ServiceSpec::new("worker").on(rt, Behavior::leaf(Dist::exponential_ms(8.0))));
        let rt = w.add_request_type("r", front);
        for svc in [front, worker_id] {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        (w, rt)
    }

    #[test]
    fn observation_contains_all_services() {
        let (mut w, rt) = world();
        for i in 0..200 {
            w.inject_at(t(i * 5), rt);
        }
        w.run_until(t(2_000));
        let mut m = Monitor::new(SimDuration::from_secs(60));
        let obs = m.observe(&mut w, t(2_000));
        assert_eq!(obs.utilization.len(), 2);
        assert_eq!(obs.now, t(2_000));
        assert!(obs.path_stats.trace_count() > 100);
    }

    #[test]
    fn critical_service_is_the_dominant_worker() {
        let (mut w, rt) = world();
        for i in 0..400 {
            w.inject_at(t(i * 4), rt);
        }
        w.run_until(t(2_500));
        let mut m = Monitor::new(SimDuration::from_secs(60));
        let obs = m.observe(&mut w, t(2_500));
        let crit = obs.critical_service(&LocalizeConfig {
            min_on_path: 10,
            ..Default::default()
        });
        assert_eq!(crit, Some(ServiceId(1)), "worker dominates end-to-end RT");
    }

    #[test]
    fn utilization_is_per_period_not_cumulative() {
        let (mut w, rt) = world();
        let mut m = Monitor::new(SimDuration::from_secs(60));
        // Busy first second.
        for i in 0..100 {
            w.inject_at(t(i * 10), rt);
        }
        w.run_until(t(1_000));
        let busy = m.observe(&mut w, t(1_000));
        // Idle second second.
        w.run_until(t(2_000));
        let idle = m.observe(&mut w, t(2_000));
        let w_id = ServiceId(1);
        assert!(
            busy.utilization[&w_id] > 0.3,
            "busy: {:?}",
            busy.utilization
        );
        assert!(
            idle.utilization[&w_id] < 0.1,
            "idle: {:?}",
            idle.utilization
        );
    }
}
