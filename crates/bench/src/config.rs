//! Declarative scenario configuration for the `run_scenario` CLI: describe
//! an experiment as JSON (application, workload trace, controller stack,
//! SLA) and run it without writing Rust.

use apps::{
    RunResult, Scenario, ScenarioConfig, SocialNetwork, SocialNetworkParams, SockShop,
    SockShopParams, Watch,
};
use autoscalers::{FirmConfig, FirmController, HpaConfig, HpaController, VpaConfig, VpaController};
use cluster::Millicores;
use microsim::{World, WorldConfig};
use scg::LocalizeConfig;
use serde::{Deserialize, Serialize};
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::{
    Controller, NullController, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig,
    SoraController,
};
use telemetry::ServiceId;
use workload::{Mix, RateCurve, TraceShape, UserPool};

/// Which benchmark application to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum App {
    /// The 11-service Sock Shop, driven on its Cart path.
    SockShop,
    /// The 36-service Social Network, driven on read-home-timeline.
    SocialNetwork,
}

/// The hardware autoscaler under (or without) Sora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Hardware {
    /// No hardware scaling.
    #[default]
    None,
    /// Kubernetes Horizontal Pod Autoscaling on the focus service.
    Hpa,
    /// Kubernetes Vertical Pod Autoscaling on the focus service.
    Vpa,
    /// FIRM-style critical-instance vertical scaling.
    Firm,
}

/// The soft-resource adaptation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum SoftAdaptation {
    /// Static pools (the paper's baseline).
    #[default]
    None,
    /// The latency-aware SCG adapter (Sora).
    Sora,
    /// The throughput-based SCT adapter (ConScale).
    Conscale,
}

/// A declarative experiment.
///
/// # Example
///
/// ```
/// let json = r#"{
///     "app": "sock_shop",
///     "trace": "SteepTriPhase",
///     "max_users": 1200.0,
///     "duration_secs": 60,
///     "sla_ms": 400,
///     "hardware": "firm",
///     "soft": "sora",
///     "seed": 1
/// }"#;
/// let cfg: sora_bench::config::ScenarioSpec = serde_json::from_str(json).unwrap();
/// let outcome = cfg.run();
/// assert!(outcome.summary.completed > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The application topology.
    pub app: App,
    /// The workload trace shape (e.g. `"SteepTriPhase"`, `"Steady"`).
    pub trace: TraceShape,
    /// Maximum concurrent users.
    pub max_users: f64,
    /// Run length in seconds.
    pub duration_secs: u64,
    /// End-to-end SLA (goodput threshold and Sora's deadline) in ms.
    pub sla_ms: u64,
    /// Hardware autoscaler.
    #[serde(default)]
    pub hardware: Hardware,
    /// Soft-resource adaptation.
    #[serde(default)]
    pub soft: SoftAdaptation,
    /// Run seed.
    #[serde(default)]
    pub seed: u64,
    /// Sock Shop: Cart thread-pool size (default 5).
    #[serde(default)]
    pub cart_threads: Option<usize>,
    /// Sock Shop: Cart CPU cores (default 2).
    #[serde(default)]
    pub cart_cores: Option<u32>,
    /// Social Network: Home-Timeline → Post Storage pool size (default 10).
    #[serde(default)]
    pub home_timeline_conns: Option<usize>,
    /// Social Network: flip to heavy reads at this second.
    #[serde(default)]
    pub drift_at_secs: Option<u64>,
}

/// What a scenario run produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Timelines and summary.
    pub result: RunResult,
    /// Convenience copy of the summary.
    pub summary: apps::Summary,
    /// The final world for post-hoc queries.
    pub world: World,
}

impl ScenarioSpec {
    /// The service the controllers focus on (Cart / Post Storage).
    fn focus(&self) -> ServiceId {
        match self.app {
            App::SockShop => ServiceId(1),
            App::SocialNetwork => ServiceId(2),
        }
    }

    /// The tunable soft resource of the app.
    fn soft_resource(&self) -> SoftResource {
        match self.app {
            App::SockShop => SoftResource::ThreadPool {
                service: ServiceId(1),
            },
            App::SocialNetwork => SoftResource::ConnPool {
                caller: ServiceId(1),
                target: ServiceId(2),
            },
        }
    }

    fn build_controller(&self) -> Box<dyn Controller> {
        let focus = self.focus();
        let hardware: Box<dyn Controller> = match self.hardware {
            Hardware::None => Box::new(NullController),
            Hardware::Hpa => Box::new(HpaController::new(focus, HpaConfig::default())),
            Hardware::Vpa => Box::new(VpaController::new(focus, VpaConfig::default())),
            Hardware::Firm => Box::new(FirmController::new(FirmConfig {
                services: vec![focus],
                localize: LocalizeConfig {
                    min_on_path: 30,
                    ..Default::default()
                },
                min_limit: Millicores::from_cores(1),
                max_limit: Millicores::from_cores(4),
                ..Default::default()
            })),
        };
        let registry =
            ResourceRegistry::new().with(self.soft_resource(), ResourceBounds { min: 2, max: 256 });
        let sora_config = SoraConfig {
            sla: SimDuration::from_millis(self.sla_ms),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        match self.soft {
            SoftAdaptation::None => hardware,
            SoftAdaptation::Sora => Box::new(SoraController::sora(sora_config, registry, hardware)),
            SoftAdaptation::Conscale => {
                Box::new(SoraController::conscale(sora_config, registry, hardware))
            }
        }
    }

    /// Builds and runs the scenario.
    pub fn run(&self) -> ScenarioOutcome {
        let world_config = WorldConfig {
            trace_sample_every: 10,
            ..Default::default()
        };
        let curve = RateCurve::new(
            self.trace,
            self.max_users,
            SimDuration::from_secs(self.duration_secs),
        );
        let pool = UserPool::new(
            curve,
            Dist::exponential_ms(crate::scenarios::THINK_MS),
            SimRng::seed_from(self.seed ^ 0xABCD),
        );
        let scenario_config = ScenarioConfig {
            report_rtt: SimDuration::from_millis(self.sla_ms),
            ..Default::default()
        };
        let mut controller = self.build_controller();
        let (result, world) = match self.app {
            App::SockShop => {
                let mut shop = SockShop::build_with_config(
                    SockShopParams {
                        cart_threads: self.cart_threads.unwrap_or(5),
                        cart_cores: self.cart_cores.unwrap_or(2),
                        ..Default::default()
                    },
                    world_config,
                    SimRng::seed_from(self.seed),
                );
                let scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(shop.get_cart),
                    Watch {
                        service: shop.cart,
                        conns: None,
                    },
                );
                (
                    scenario.run(&mut shop.world, controller.as_mut()),
                    shop.world,
                )
            }
            App::SocialNetwork => {
                let mut sn = SocialNetwork::build_with_config(
                    SocialNetworkParams {
                        home_timeline_conns: self.home_timeline_conns.unwrap_or(10),
                        ..Default::default()
                    },
                    world_config,
                    SimRng::seed_from(self.seed),
                );
                let mut scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(sn.read_home_timeline_light),
                    Watch {
                        service: sn.post_storage,
                        conns: Some((sn.home_timeline, sn.post_storage)),
                    },
                );
                if let Some(at) = self.drift_at_secs {
                    scenario = scenario.with_mix_change(
                        SimTime::from_secs(at),
                        Mix::single(sn.read_home_timeline_heavy),
                    );
                }
                (scenario.run(&mut sn.world, controller.as_mut()), sn.world)
            }
        };
        let summary = result.summary;
        ScenarioOutcome {
            result,
            summary,
            world,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            app: App::SockShop,
            trace: TraceShape::Steady,
            max_users: 400.0,
            duration_secs: 30,
            sla_ms: 400,
            hardware: Hardware::None,
            soft: SoftAdaptation::None,
            seed: 3,
            cart_threads: None,
            cart_cores: None,
            home_timeline_conns: None,
            drift_at_secs: None,
        }
    }

    #[test]
    fn json_round_trip_with_defaults() {
        let json = r#"{
            "app": "social_network",
            "trace": "LargeVariation",
            "max_users": 500.0,
            "duration_secs": 10,
            "sla_ms": 250
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.app, App::SocialNetwork);
        assert_eq!(spec.hardware, Hardware::None);
        assert_eq!(spec.soft, SoftAdaptation::None);
        let back = serde_json::to_string(&spec).unwrap();
        assert!(back.contains("social_network"));
    }

    #[test]
    fn sock_shop_scenario_runs() {
        let outcome = base().run();
        assert!(outcome.summary.completed > 1_000);
        assert_eq!(outcome.summary.dropped, 0);
    }

    #[test]
    fn controller_stacks_compose() {
        // The three stacks are independent runs — fan them out through the
        // sweep harness (also exercising it against full scenario runs).
        let stacks = [
            (Hardware::Firm, SoftAdaptation::Sora),
            (Hardware::Vpa, SoftAdaptation::Conscale),
            (Hardware::Hpa, SoftAdaptation::None),
        ];
        let outcome = crate::Sweep::with_jobs(3).run(
            stacks
                .into_iter()
                .map(|(hw, soft)| {
                    crate::job(format!("{hw:?}/{soft:?}"), move || {
                        let spec = ScenarioSpec {
                            hardware: hw,
                            soft,
                            duration_secs: 20,
                            ..base()
                        };
                        spec.run().summary
                    })
                })
                .collect(),
        );
        for ((hw, soft), summary) in stacks.into_iter().zip(outcome.results) {
            assert!(summary.completed > 500, "{hw:?}/{soft:?}");
        }
    }

    #[test]
    fn social_network_drift_spec_runs() {
        let spec = ScenarioSpec {
            app: App::SocialNetwork,
            max_users: 600.0,
            drift_at_secs: Some(15),
            duration_secs: 30,
            ..base()
        };
        let outcome = spec.run();
        assert!(outcome.summary.completed > 1_000);
    }
}
