//! Declarative scenario configuration for the `run_scenario` CLI: describe
//! an experiment as JSON (application, workload trace, controller stack,
//! SLA) and run it without writing Rust.

use apps::{
    RunResult, Scenario, ScenarioConfig, SocialNetwork, SocialNetworkParams, SockShop,
    SockShopParams, Watch,
};
use autoscalers::{FirmConfig, FirmController, HpaConfig, HpaController, VpaConfig, VpaController};
use cluster::{Millicores, NodeId};
use microsim::{BlackoutMode, FaultSchedule, World, WorldConfig};
use net::{EdgeParams, NetworkConfig};
use scg::LocalizeConfig;
use serde::{Deserialize, Serialize};
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::{
    Controller, NullController, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig,
    SoraController,
};
use telemetry::ServiceId;
use topo::TopoParams;
use workload::{Mix, RateCurve, RetryPolicy, TraceShape, UserPool};

/// Which benchmark application to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum App {
    /// The 11-service Sock Shop, driven on its Cart path.
    SockShop,
    /// The 36-service Social Network, driven on read-home-timeline.
    SocialNetwork,
    /// A generated Sock-Shop-shaped topology (`crates/topo`), sized by
    /// [`ScenarioSpec::services`] and structured by
    /// [`ScenarioSpec::topo_seed`], driven on its first request mix.
    Generated,
}

/// The hardware autoscaler under (or without) Sora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Hardware {
    /// No hardware scaling.
    #[default]
    None,
    /// Kubernetes Horizontal Pod Autoscaling on the focus service.
    Hpa,
    /// Kubernetes Vertical Pod Autoscaling on the focus service.
    Vpa,
    /// FIRM-style critical-instance vertical scaling.
    Firm,
}

/// The soft-resource adaptation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum SoftAdaptation {
    /// Static pools (the paper's baseline).
    #[default]
    None,
    /// The latency-aware SCG adapter (Sora).
    Sora,
    /// The throughput-based SCT adapter (ConScale).
    Conscale,
}

/// One fault in a scenario's [`ScenarioSpec::faults`] schedule — the
/// JSON-facing mirror of `microsim`'s `FaultKind`, with instants and
/// window lengths in whole milliseconds since run start.
///
/// [`ScenarioSpec::validate`] converts the list to a [`FaultSchedule`]
/// and defers to [`FaultSchedule::validate_within`], so the fault crate
/// stays the single authority on what a legal schedule is; this type only
/// adds the bounds a *spec* needs (service indices that exist, node 0,
/// network faults only when a network is installed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultSpec {
    /// Crash the longest-lived ready replica of `service`, optionally
    /// restarting one `restart_after_ms` later.
    Crash {
        /// Victim service index.
        service: u32,
        /// Crash instant, ms since run start.
        at_ms: u64,
        /// Delay before a replacement replica starts (`None`: no restart).
        #[serde(default)]
        restart_after_ms: Option<u64>,
    },
    /// Scale node `node`'s CPU capacity by `factor` for the window.
    CpuPressure {
        /// Pressured node index (the apps place every pod on node 0).
        node: u32,
        /// Window start, ms since run start.
        at_ms: u64,
        /// Window length in ms.
        duration_ms: u64,
        /// Remaining capacity fraction in `(0, 1]`.
        factor: f64,
    },
    /// Suppress (`lag = false`) or delay (`lag = true`) telemetry reports
    /// for the window.
    TelemetryBlackout {
        /// Window start, ms since run start.
        at_ms: u64,
        /// Window length in ms.
        duration_ms: u64,
        /// Lag mode delivers reports late instead of dropping them.
        lag: bool,
    },
    /// Sever the network link between services `a` and `b` for the window.
    /// Requires [`ScenarioSpec::net`].
    Partition {
        /// One side of the severed link.
        a: u32,
        /// The other side.
        b: u32,
        /// Window start, ms since run start.
        at_ms: u64,
        /// Window length in ms.
        duration_ms: u64,
    },
    /// Multiply latency on the `a` ↔ `b` link by `factor` for the window.
    /// Requires [`ScenarioSpec::net`].
    LinkSlow {
        /// One side of the slowed link.
        a: u32,
        /// The other side.
        b: u32,
        /// Window start, ms since run start.
        at_ms: u64,
        /// Window length in ms.
        duration_ms: u64,
        /// Latency multiplier, at least 1.
        factor: f64,
    },
}

impl FaultSpec {
    /// The same fault translated `delta_ms` later — the input half of the
    /// time-translation metamorphic oracle (shift *every* input, faults
    /// included, and completions must shift exactly).
    pub fn shifted_ms(self, delta_ms: u64) -> FaultSpec {
        let mut f = self;
        match &mut f {
            FaultSpec::Crash { at_ms, .. }
            | FaultSpec::CpuPressure { at_ms, .. }
            | FaultSpec::TelemetryBlackout { at_ms, .. }
            | FaultSpec::Partition { at_ms, .. }
            | FaultSpec::LinkSlow { at_ms, .. } => *at_ms += delta_ms,
        }
        f
    }

    /// Appends this fault to a schedule under construction.
    fn apply(self, s: FaultSchedule) -> FaultSchedule {
        let at = |ms: u64| SimTime::from_millis(ms);
        match self {
            FaultSpec::Crash {
                service,
                at_ms,
                restart_after_ms,
            } => s.crash(
                at(at_ms),
                ServiceId(service),
                restart_after_ms.map(SimDuration::from_millis),
            ),
            FaultSpec::CpuPressure {
                node,
                at_ms,
                duration_ms,
                factor,
            } => s.cpu_pressure_between(at(at_ms), at(at_ms + duration_ms), NodeId(node), factor),
            FaultSpec::TelemetryBlackout {
                at_ms,
                duration_ms,
                lag,
            } => s.telemetry_blackout_between(
                at(at_ms),
                at(at_ms + duration_ms),
                if lag {
                    BlackoutMode::Lag
                } else {
                    BlackoutMode::Drop
                },
            ),
            FaultSpec::Partition {
                a,
                b,
                at_ms,
                duration_ms,
            } => s.partition_between(
                at(at_ms),
                at(at_ms + duration_ms),
                ServiceId(a),
                ServiceId(b),
            ),
            FaultSpec::LinkSlow {
                a,
                b,
                at_ms,
                duration_ms,
                factor,
            } => s.slow_link(
                at(at_ms),
                ServiceId(a),
                ServiceId(b),
                factor,
                SimDuration::from_millis(duration_ms),
            ),
        }
    }
}

/// Client retry policy knobs ([`ScenarioSpec::retry`]). Every field is
/// optional; `None` takes the corresponding [`RetryPolicy`] default, so
/// `{"max_retries": 2}` is a complete policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrySpec {
    /// Maximum retries per logical request.
    #[serde(default)]
    pub max_retries: Option<u32>,
    /// Backoff before the first retry, in ms (doubles per attempt).
    #[serde(default)]
    pub base_backoff_ms: Option<u64>,
    /// Upper bound on any single backoff, in ms.
    #[serde(default)]
    pub max_backoff_ms: Option<u64>,
    /// Multiplicative jitter half-width in `[0, 1]`.
    #[serde(default)]
    pub jitter_frac: Option<f64>,
    /// Budget tokens earned per successful completion.
    #[serde(default)]
    pub budget_ratio: Option<f64>,
    /// Maximum banked budget tokens (also the initial balance).
    #[serde(default)]
    pub budget_cap: Option<f64>,
}

impl RetrySpec {
    /// The concrete policy, with defaults filled in.
    pub fn policy(&self) -> RetryPolicy {
        let d = RetryPolicy::default();
        RetryPolicy {
            max_retries: self.max_retries.unwrap_or(d.max_retries),
            base_backoff: self
                .base_backoff_ms
                .map(SimDuration::from_millis)
                .unwrap_or(d.base_backoff),
            max_backoff: self
                .max_backoff_ms
                .map(SimDuration::from_millis)
                .unwrap_or(d.max_backoff),
            jitter_frac: self.jitter_frac.unwrap_or(d.jitter_frac),
            budget_ratio: self.budget_ratio.unwrap_or(d.budget_ratio),
            budget_cap: self.budget_cap.unwrap_or(d.budget_cap),
        }
    }
}

/// Message-passing network knobs ([`ScenarioSpec::net`]): one uniform
/// parameter set applied to every client and service edge (telemetry
/// stays transparent). `None` fields take the transparent default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Constant one-way edge latency in microseconds.
    #[serde(default)]
    pub latency_us: Option<u64>,
    /// Per-message drop probability in `[0, 1)`.
    #[serde(default)]
    pub loss: Option<f64>,
    /// Per-telemetry-message duplicate-delivery probability in `[0, 1)`.
    #[serde(default)]
    pub duplicate: Option<f64>,
    /// Caller-side per-call timeout in ms; expiry resends the call.
    #[serde(default)]
    pub call_timeout_ms: Option<u64>,
    /// Resend budget after timeouts (requires `call_timeout_ms`).
    #[serde(default)]
    pub max_call_retries: Option<u32>,
}

impl NetSpec {
    /// The concrete network configuration.
    pub fn network_config(&self) -> NetworkConfig {
        let latency = SimDuration::from_micros(self.latency_us.unwrap_or(0));
        let mut edge = EdgeParams::constant(latency);
        if let Some(p) = self.loss {
            edge = edge.loss(p);
        }
        if let Some(p) = self.duplicate {
            edge = edge.duplicate(p);
        }
        if let Some(t) = self.call_timeout_ms {
            edge = edge.timeout(
                SimDuration::from_millis(t),
                self.max_call_retries.unwrap_or(0),
            );
        }
        NetworkConfig::transparent()
            .default_edge(edge)
            .client_edge(EdgeParams::constant(latency))
    }
}

/// A declarative experiment.
///
/// # Example
///
/// ```
/// let json = r#"{
///     "app": "sock_shop",
///     "trace": "SteepTriPhase",
///     "max_users": 1200.0,
///     "duration_secs": 60,
///     "sla_ms": 400,
///     "hardware": "firm",
///     "soft": "sora",
///     "seed": 1
/// }"#;
/// let cfg: sora_bench::config::ScenarioSpec = serde_json::from_str(json).unwrap();
/// let outcome = cfg.run();
/// assert!(outcome.summary.completed > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The application topology.
    pub app: App,
    /// The workload trace shape (e.g. `"SteepTriPhase"`, `"Steady"`).
    pub trace: TraceShape,
    /// Maximum concurrent users.
    pub max_users: f64,
    /// Run length in seconds.
    pub duration_secs: u64,
    /// End-to-end SLA (goodput threshold and Sora's deadline) in ms.
    pub sla_ms: u64,
    /// Hardware autoscaler.
    #[serde(default)]
    pub hardware: Hardware,
    /// Soft-resource adaptation.
    #[serde(default)]
    pub soft: SoftAdaptation,
    /// Run seed.
    #[serde(default)]
    pub seed: u64,
    /// Sock Shop: Cart thread-pool size (default 5).
    #[serde(default)]
    pub cart_threads: Option<usize>,
    /// Sock Shop: Cart CPU cores (default 2).
    #[serde(default)]
    pub cart_cores: Option<u32>,
    /// Social Network: Home-Timeline → Post Storage pool size (default 10).
    #[serde(default)]
    pub home_timeline_conns: Option<usize>,
    /// Social Network: flip to heavy reads at this second.
    #[serde(default)]
    pub drift_at_secs: Option<u64>,
    /// World-engine shard count (DESIGN §14): `1` runs the sharded
    /// engine's sequential oracle, `N` partitions services across `N`
    /// concurrent shards — byte-identical outputs either way. Omitted
    /// (the default) keeps the classic single-wheel engine. Values are
    /// clamped to the app's service count at build time; `0` and values
    /// above 64 are rejected at parse time. Incompatible with `net`.
    #[serde(default)]
    pub shards: Option<usize>,
    /// Generated app: total services in the topology. Required for (and
    /// only meaningful with) `"app": "generated"`.
    #[serde(default)]
    pub services: Option<usize>,
    /// Generated app: structure seed for the topology generator (layer
    /// widths, call edges, service-time medians). Defaults to the
    /// Sock-Shop-like preset seed.
    #[serde(default)]
    pub topo_seed: Option<u64>,
    /// Client retry policy (bounded, budgeted exponential backoff).
    #[serde(default)]
    pub retry: Option<RetrySpec>,
    /// Message-passing network between services (DESIGN §13).
    /// Incompatible with `shards`.
    #[serde(default)]
    pub net: Option<NetSpec>,
    /// Fault schedule, gated through [`FaultSchedule::validate_within`].
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
}

/// Why a scenario config was rejected. Typed (rather than a panic or a
/// stringly error) so `sora-server` can map each cause onto a structured
/// error reply and keep serving, and so the CLI can print a precise
/// diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScenarioError {
    /// The text is not valid JSON, or its top level is not an object.
    Malformed {
        /// The parser's message.
        message: String,
    },
    /// A top-level field the schema does not define — almost always a typo
    /// that would otherwise be silently ignored.
    UnknownField {
        /// The offending field name.
        field: String,
    },
    /// A known field failed to deserialize (wrong type, unknown enum
    /// variant, missing required field).
    BadField {
        /// The deserializer's message.
        message: String,
    },
    /// A field deserialized but its value is outside the physically
    /// meaningful range.
    InvalidValue {
        /// The offending field name.
        field: String,
        /// Why the value is rejected.
        message: String,
    },
    /// The drift switch does not fall inside the run window.
    InvertedWindow {
        /// The configured `drift_at_secs`.
        drift_at_secs: u64,
        /// The configured `duration_secs`.
        duration_secs: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Malformed { message } => {
                write!(f, "malformed scenario JSON: {message}")
            }
            ScenarioError::UnknownField { field } => {
                write!(f, "unknown scenario field `{field}`")
            }
            ScenarioError::BadField { message } => {
                write!(f, "invalid scenario field: {message}")
            }
            ScenarioError::InvalidValue { field, message } => {
                write!(f, "invalid value for `{field}`: {message}")
            }
            ScenarioError::InvertedWindow {
                drift_at_secs,
                duration_secs,
            } => write!(
                f,
                "drift_at_secs ({drift_at_secs}) must fall inside the run \
                 (duration_secs = {duration_secs})"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// What a scenario run produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Timelines and summary.
    pub result: RunResult,
    /// Convenience copy of the summary.
    pub summary: apps::Summary,
    /// The final world for post-hoc queries.
    pub world: World,
}

impl ScenarioSpec {
    /// Every top-level field the schema defines. `parse` rejects anything
    /// else: the derive-level deserializer ignores unknown keys, which
    /// would silently turn a typo (`"max_user"`) into a default value.
    pub const KNOWN_FIELDS: [&'static str; 18] = [
        "app",
        "trace",
        "max_users",
        "duration_secs",
        "sla_ms",
        "hardware",
        "soft",
        "seed",
        "cart_threads",
        "cart_cores",
        "home_timeline_conns",
        "drift_at_secs",
        "shards",
        "services",
        "topo_seed",
        "retry",
        "net",
        "faults",
    ];

    /// Parses and validates a scenario config, reporting the first problem
    /// as a typed [`ScenarioError`]: malformed JSON, an unknown field, a
    /// field that fails to deserialize, an out-of-range value, or an
    /// inverted drift window.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let spec = Self::parse_unchecked(text)?;
        spec.validate()?;
        Ok(spec)
    }

    /// [`parse`](Self::parse) without the [`validate`](Self::validate)
    /// pass: syntax, unknown-field, and field-shape errors only. Exists
    /// for tooling that needs to inspect specs the semantic gate rejects
    /// (the fuzz regression corpus keeps such reproducers on disk).
    pub fn parse_unchecked(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let value = serde_json::parse(text).map_err(|e| ScenarioError::Malformed {
            message: e.to_string(),
        })?;
        let obj = value.as_object().ok_or_else(|| ScenarioError::Malformed {
            message: "scenario config must be a JSON object".to_string(),
        })?;
        for (key, _) in obj.iter() {
            if !Self::KNOWN_FIELDS.contains(&key.as_str()) {
                return Err(ScenarioError::UnknownField { field: key.clone() });
            }
        }
        serde_json::from_value(&value).map_err(|e| ScenarioError::BadField {
            message: e.to_string(),
        })
    }

    /// Checks the semantic constraints `parse` enforces after
    /// deserialization. Public so specs built in Rust get the same
    /// screening as specs read from JSON.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |field: &str, message: String| ScenarioError::InvalidValue {
            field: field.to_string(),
            message,
        };
        if !self.max_users.is_finite() || self.max_users <= 0.0 {
            return Err(invalid(
                "max_users",
                format!("must be a finite positive number, got {}", self.max_users),
            ));
        }
        if self.max_users > 10_000_000.0 {
            return Err(invalid(
                "max_users",
                format!("at most 10M users are supported, got {}", self.max_users),
            ));
        }
        if self.duration_secs == 0 {
            return Err(invalid("duration_secs", "must be positive".to_string()));
        }
        // A day of simulated time keeps every ms → ns conversion far from
        // u64 overflow; without the cap a huge duration passes validation
        // and panics later in `build` (the gate gap the fuzzer hunts).
        if self.duration_secs > 86_400 {
            return Err(invalid(
                "duration_secs",
                format!(
                    "at most 86400 s (one day) is supported, got {}",
                    self.duration_secs
                ),
            ));
        }
        if self.sla_ms == 0 {
            return Err(invalid("sla_ms", "must be positive".to_string()));
        }
        if self.sla_ms > 3_600_000 {
            return Err(invalid(
                "sla_ms",
                format!(
                    "at most 3600000 ms (one hour) is supported, got {}",
                    self.sla_ms
                ),
            ));
        }
        if self.cart_threads == Some(0) {
            return Err(invalid(
                "cart_threads",
                "the pool needs at least one thread".to_string(),
            ));
        }
        if self.cart_cores == Some(0) {
            return Err(invalid(
                "cart_cores",
                "the Cart pod needs at least one core".to_string(),
            ));
        }
        if self.home_timeline_conns == Some(0) {
            return Err(invalid(
                "home_timeline_conns",
                "the pool needs at least one connection".to_string(),
            ));
        }
        if let Some(at) = self.drift_at_secs {
            if at >= self.duration_secs {
                return Err(ScenarioError::InvertedWindow {
                    drift_at_secs: at,
                    duration_secs: self.duration_secs,
                });
            }
        }
        match self.shards {
            Some(0) => {
                return Err(invalid(
                    "shards",
                    "the world needs at least one shard".to_string(),
                ));
            }
            Some(n) if n > 64 => {
                return Err(invalid(
                    "shards",
                    format!("at most 64 shards are supported, got {n}"),
                ));
            }
            _ => {}
        }
        // App-specific knobs on the wrong app would be silently ignored by
        // `build`, so two behaviourally identical specs would cache under
        // different canon keys. Reject the mismatch instead.
        if self.app != App::SockShop {
            if self.cart_threads.is_some() {
                return Err(invalid(
                    "cart_threads",
                    "only meaningful for app = sock_shop".to_string(),
                ));
            }
            if self.cart_cores.is_some() {
                return Err(invalid(
                    "cart_cores",
                    "only meaningful for app = sock_shop".to_string(),
                ));
            }
        }
        if self.app != App::SocialNetwork && self.home_timeline_conns.is_some() {
            return Err(invalid(
                "home_timeline_conns",
                "only meaningful for app = social_network".to_string(),
            ));
        }
        if self.app == App::SockShop && self.drift_at_secs.is_some() {
            return Err(invalid(
                "drift_at_secs",
                "sock_shop drives a single request mix; drift needs \
                 social_network or generated"
                    .to_string(),
            ));
        }
        match self.app {
            App::Generated => match self.services {
                None => {
                    return Err(invalid(
                        "services",
                        "app = generated requires a service count".to_string(),
                    ));
                }
                Some(n) if !(5..=2_000).contains(&n) => {
                    return Err(invalid(
                        "services",
                        format!("generated topologies support 5..=2000 services, got {n}"),
                    ));
                }
                Some(_) => {}
            },
            App::SockShop | App::SocialNetwork => {
                if self.services.is_some() {
                    return Err(invalid(
                        "services",
                        "only meaningful for app = generated".to_string(),
                    ));
                }
                if self.topo_seed.is_some() {
                    return Err(invalid(
                        "topo_seed",
                        "only meaningful for app = generated".to_string(),
                    ));
                }
            }
        }
        if let Some(retry) = &self.retry {
            let bad_frac = |v: f64| !v.is_finite() || !(0.0..=1.0).contains(&v);
            if retry.jitter_frac.is_some_and(bad_frac) {
                return Err(invalid(
                    "retry.jitter_frac",
                    "must be in [0, 1]".to_string(),
                ));
            }
            if retry
                .budget_ratio
                .is_some_and(|v| !v.is_finite() || v < 0.0)
            {
                return Err(invalid(
                    "retry.budget_ratio",
                    "must be finite and non-negative".to_string(),
                ));
            }
            if retry.budget_cap.is_some_and(|v| !v.is_finite() || v < 0.0) {
                return Err(invalid(
                    "retry.budget_cap",
                    "must be finite and non-negative".to_string(),
                ));
            }
            if retry.max_retries.is_some_and(|v| v > 100) {
                return Err(invalid(
                    "retry.max_retries",
                    "at most 100 retries are supported".to_string(),
                ));
            }
            let day_ms = 86_400_000;
            if retry.base_backoff_ms.is_some_and(|v| v > day_ms)
                || retry.max_backoff_ms.is_some_and(|v| v > day_ms)
            {
                return Err(invalid(
                    "retry",
                    "backoffs above one day are not supported".to_string(),
                ));
            }
        }
        if let Some(net) = &self.net {
            if self.shards.is_some() {
                return Err(invalid(
                    "net",
                    "the message-passing network is incompatible with the \
                     sharded engine; drop `shards` or `net`"
                        .to_string(),
                ));
            }
            let bad_prob = |v: f64| !v.is_finite() || !(0.0..1.0).contains(&v);
            if net.loss.is_some_and(bad_prob) {
                return Err(invalid("net.loss", "must be in [0, 1)".to_string()));
            }
            if net.duplicate.is_some_and(bad_prob) {
                return Err(invalid("net.duplicate", "must be in [0, 1)".to_string()));
            }
            if net.latency_us.is_some_and(|v| v > 10_000_000) {
                return Err(invalid(
                    "net.latency_us",
                    "at most 10 s of edge latency is supported".to_string(),
                ));
            }
            if net.call_timeout_ms == Some(0) {
                return Err(invalid(
                    "net.call_timeout_ms",
                    "a zero call timeout would expire every call at send \
                     time"
                        .to_string(),
                ));
            }
            if net.call_timeout_ms.is_some_and(|v| v > 86_400_000) {
                return Err(invalid(
                    "net.call_timeout_ms",
                    "at most one day is supported".to_string(),
                ));
            }
            if net.max_call_retries.is_some() && net.call_timeout_ms.is_none() {
                return Err(invalid(
                    "net.max_call_retries",
                    "meaningless without net.call_timeout_ms".to_string(),
                ));
            }
            if net.max_call_retries.is_some_and(|v| v > 100) {
                return Err(invalid(
                    "net.max_call_retries",
                    "at most 100 resends are supported".to_string(),
                ));
            }
        }
        self.validate_faults()?;
        Ok(())
    }

    /// The fault-specific half of [`ScenarioSpec::validate`]: spec-level
    /// bounds first (indices that exist, sane factors, network faults only
    /// with a network), then the whole list through the single schedule
    /// gate [`FaultSchedule::validate_within`].
    fn validate_faults(&self) -> Result<(), ScenarioError> {
        let invalid = |message: String| ScenarioError::InvalidValue {
            field: "faults".to_string(),
            message,
        };
        // One day in ms: keeps every `at_ms + duration_ms` → SimTime
        // conversion far from u64 nanosecond overflow before the horizon
        // check can reject it.
        let day_ms = 86_400_000u64;
        let services = self.service_count() as u32;
        let check_service = |s: u32| {
            if s >= services {
                Err(invalid(format!(
                    "service index {s} out of range (the app has {services} services)"
                )))
            } else {
                Ok(())
            }
        };
        for f in &self.faults {
            let (at_ms, duration_ms) = match *f {
                FaultSpec::Crash {
                    service,
                    at_ms,
                    restart_after_ms,
                } => {
                    check_service(service)?;
                    (at_ms, restart_after_ms.unwrap_or(0))
                }
                FaultSpec::CpuPressure {
                    node,
                    at_ms,
                    duration_ms,
                    factor,
                } => {
                    if node != 0 {
                        return Err(invalid(format!(
                            "cpu_pressure node {node}: the apps place every pod on node 0"
                        )));
                    }
                    if !factor.is_finite() || !(0.0..=1.0).contains(&factor) || factor == 0.0 {
                        return Err(invalid(format!(
                            "cpu_pressure factor {factor} must be in (0, 1]"
                        )));
                    }
                    (at_ms, duration_ms)
                }
                FaultSpec::TelemetryBlackout {
                    at_ms, duration_ms, ..
                } => (at_ms, duration_ms),
                FaultSpec::Partition {
                    a,
                    b,
                    at_ms,
                    duration_ms,
                } => {
                    check_service(a)?;
                    check_service(b)?;
                    if a == b {
                        return Err(invalid(format!("partition of service {a} with itself")));
                    }
                    if self.net.is_none() {
                        return Err(invalid(
                            "partition faults need `net` (without a network they would \
                             be silently ignored)"
                                .to_string(),
                        ));
                    }
                    (at_ms, duration_ms)
                }
                FaultSpec::LinkSlow {
                    a,
                    b,
                    at_ms,
                    duration_ms,
                    factor,
                } => {
                    check_service(a)?;
                    check_service(b)?;
                    if a == b {
                        return Err(invalid(format!("slow link from service {a} to itself")));
                    }
                    if self.net.is_none() {
                        return Err(invalid(
                            "link_slow faults need `net` (without a network they would \
                             be silently ignored)"
                                .to_string(),
                        ));
                    }
                    if !factor.is_finite() || !(1.0..=1_000.0).contains(&factor) {
                        return Err(invalid(format!(
                            "link_slow factor {factor} must be in [1, 1000]"
                        )));
                    }
                    (at_ms, duration_ms)
                }
            };
            if at_ms > day_ms || duration_ms > day_ms {
                return Err(invalid(format!(
                    "fault window at {at_ms} ms for {duration_ms} ms exceeds the one-day cap"
                )));
            }
        }
        self.fault_schedule()
            .validate_within(SimTime::from_secs(self.duration_secs))
            .map_err(|e| invalid(e.to_string()))
    }

    /// The [`FaultSchedule`] this spec's `faults` list describes. Public
    /// so harnesses (e.g. the scenario fuzzer) can replay a spec's faults
    /// against worlds they build themselves.
    pub fn fault_schedule(&self) -> FaultSchedule {
        self.faults
            .iter()
            .fold(FaultSchedule::new(), |s, f| f.apply(s))
    }

    /// Services in the topology this spec builds.
    pub fn service_count(&self) -> usize {
        match self.app {
            App::SockShop => 12,
            App::SocialNetwork => 36,
            App::Generated => self.services.unwrap_or(0),
        }
    }

    /// The service the controllers focus on (Cart / Post Storage / the
    /// first service of the generated topology's connection-pool tier).
    fn focus(&self) -> ServiceId {
        match self.app {
            App::SockShop => ServiceId(1),
            App::SocialNetwork => ServiceId(2),
            App::Generated => {
                // Service ids are assigned layer by layer, so the first
                // conn-tier id is the total width of the layers above it.
                let sizes = topo::layer_widths(self.services.unwrap_or(5), 5);
                let conn_layer = sizes.len() - 2;
                ServiceId(sizes[..conn_layer].iter().sum::<usize>() as u32)
            }
        }
    }

    /// The tunable soft resource of the app.
    fn soft_resource(&self) -> SoftResource {
        match self.app {
            App::SockShop => SoftResource::ThreadPool {
                service: ServiceId(1),
            },
            App::SocialNetwork => SoftResource::ConnPool {
                caller: ServiceId(1),
                target: ServiceId(2),
            },
            App::Generated => SoftResource::ThreadPool {
                service: self.focus(),
            },
        }
    }

    fn build_controller(&self) -> Box<dyn Controller> {
        let focus = self.focus();
        let hardware: Box<dyn Controller> = match self.hardware {
            Hardware::None => Box::new(NullController),
            Hardware::Hpa => Box::new(HpaController::new(focus, HpaConfig::default())),
            Hardware::Vpa => Box::new(VpaController::new(focus, VpaConfig::default())),
            Hardware::Firm => Box::new(FirmController::new(FirmConfig {
                services: vec![focus],
                localize: LocalizeConfig {
                    min_on_path: 30,
                    ..Default::default()
                },
                min_limit: Millicores::from_cores(1),
                max_limit: Millicores::from_cores(4),
                ..Default::default()
            })),
        };
        let registry =
            ResourceRegistry::new().with(self.soft_resource(), ResourceBounds { min: 2, max: 256 });
        let sora_config = SoraConfig {
            sla: SimDuration::from_millis(self.sla_ms),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        match self.soft {
            SoftAdaptation::None => hardware,
            SoftAdaptation::Sora => Box::new(SoraController::sora(sora_config, registry, hardware)),
            SoftAdaptation::Conscale => {
                Box::new(SoraController::conscale(sora_config, registry, hardware))
            }
        }
    }

    /// Builds the world, the closed-loop scenario driver and the controller
    /// stack without running anything — the seam `sora-server` live
    /// sessions step incrementally. [`ScenarioSpec::run`] is exactly
    /// `build()` followed by `Scenario::run`, so both paths produce
    /// byte-identical results.
    pub fn build(&self) -> BuiltScenario {
        let world_config = WorldConfig {
            trace_sample_every: 10,
            ..Default::default()
        };
        let curve = RateCurve::new(
            self.trace,
            self.max_users,
            SimDuration::from_secs(self.duration_secs),
        );
        let mut pool = UserPool::new(
            curve,
            Dist::exponential_ms(crate::scenarios::THINK_MS),
            SimRng::seed_from(self.seed ^ 0xABCD),
        );
        if let Some(retry) = &self.retry {
            pool = pool.with_retry(retry.policy());
        }
        let scenario_config = ScenarioConfig {
            report_rtt: SimDuration::from_millis(self.sla_ms),
            ..Default::default()
        };
        let controller = self.build_controller();
        let (scenario, world) = match self.app {
            App::SockShop => {
                let shop = SockShop::build_with_config(
                    SockShopParams {
                        cart_threads: self.cart_threads.unwrap_or(5),
                        cart_cores: self.cart_cores.unwrap_or(2),
                        ..Default::default()
                    },
                    world_config,
                    SimRng::seed_from(self.seed),
                );
                let scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(shop.get_cart),
                    Watch {
                        service: shop.cart,
                        conns: None,
                    },
                );
                (scenario, shop.world)
            }
            App::SocialNetwork => {
                let sn = SocialNetwork::build_with_config(
                    SocialNetworkParams {
                        home_timeline_conns: self.home_timeline_conns.unwrap_or(10),
                        ..Default::default()
                    },
                    world_config,
                    SimRng::seed_from(self.seed),
                );
                let mut scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(sn.read_home_timeline_light),
                    Watch {
                        service: sn.post_storage,
                        conns: Some((sn.home_timeline, sn.post_storage)),
                    },
                );
                if let Some(at) = self.drift_at_secs {
                    scenario = scenario.with_mix_change(
                        SimTime::from_secs(at),
                        Mix::single(sn.read_home_timeline_heavy),
                    );
                }
                (scenario, sn.world)
            }
            App::Generated => {
                let n = self
                    .services
                    .expect("validated: generated requires `services`");
                let mut params = TopoParams::sock_shop_like(n);
                if let Some(seed) = self.topo_seed {
                    params.seed = seed;
                }
                let t = topo::build(&params, world_config, SimRng::seed_from(self.seed));
                let mut scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(t.request_types[0]),
                    Watch {
                        service: self.focus(),
                        conns: None,
                    },
                );
                if let Some(at) = self.drift_at_secs {
                    // The preset generates three mixes; drift hops to the
                    // second, traversing a different subgraph.
                    scenario = scenario
                        .with_mix_change(SimTime::from_secs(at), Mix::single(t.request_types[1]));
                }
                (scenario, t.world)
            }
        };
        let mut world = world;
        if let Some(net) = &self.net {
            // `validate` rejects net + shards, so the world still runs the
            // classic engine here.
            world.install_network(net.network_config());
        }
        if let Some(n) = self.shards {
            // Validated to 1..=64 by `validate`; the app's service count
            // is the remaining physical ceiling.
            let n = n.clamp(1, world.service_count());
            world
                .enable_sharding(n)
                .expect("freshly built world accepts sharding");
        }
        if !self.faults.is_empty() {
            // Installed after `enable_sharding` so sharded runs get their
            // faults as coordinator barriers.
            world
                .install_faults(self.fault_schedule())
                .expect("validated by ScenarioSpec::validate");
        }
        BuiltScenario {
            world,
            scenario,
            controller,
        }
    }

    /// The spec's canonical JSON emission: parsing it back yields an equal
    /// spec (`parse(emit(s)) == Ok(s)`), the round-trip property the
    /// fuzzer checks and the canon cache key builds on.
    ///
    /// Unset optional fields are omitted rather than spelled as `null`
    /// (every optional field is `#[serde(default)]`, so omission and
    /// `null` parse identically). This keeps committed reproducers under
    /// `scenarios/` minimal, and makes `emit().len()` an honest size
    /// metric for the fuzzer's shrinker.
    pub fn emit(&self) -> String {
        let stripped = strip_unset(&serde_json::to_value(self));
        serde_json::to_string_pretty(&stripped).expect("spec serialises")
    }

    /// Builds and runs the scenario.
    pub fn run(&self) -> ScenarioOutcome {
        let BuiltScenario {
            mut world,
            scenario,
            mut controller,
        } = self.build();
        let result = scenario.run(&mut world, controller.as_mut());
        let summary = result.summary;
        ScenarioOutcome {
            result,
            summary,
            world,
        }
    }
}

/// Drops `null` members and empty arrays from objects, recursively. Safe
/// for [`ScenarioSpec`] because every optional field is `#[serde(default)]`:
/// an omitted member deserialises to the same value as an explicit `null`
/// (or empty list).
fn strip_unset(v: &serde_json::Value) -> serde_json::Value {
    use serde_json::Value;
    match v {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(_, val)| {
                    !val.is_null() && !matches!(val, Value::Array(a) if a.is_empty())
                })
                .map(|(k, val)| (k.clone(), strip_unset(val)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_unset).collect()),
        other => other.clone(),
    }
}

/// A scenario ready to run: the pieces [`ScenarioSpec::build`] assembles.
pub struct BuiltScenario {
    /// The simulated cluster.
    pub world: World,
    /// The closed-loop scenario driver.
    pub scenario: Scenario,
    /// The controller stack (hardware autoscaler, optionally wrapped by
    /// Sora/ConScale).
    pub controller: Box<dyn Controller>,
}

/// The canonical result payload of a scenario run — the `data` block of
/// `results/scenario_<name>.json` and the body `sora-server` returns over
/// the wire. Both sides build it here, which is what makes the wire and
/// in-process outputs byte-identical.
pub fn scenario_result_data(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> serde_json::Value {
    let mut data = serde_json::json!({
        "spec": spec,
        "summary": outcome.summary,
        "timeline": outcome.result.timeline,
        "rt": outcome.result.rt_timeline,
        "goodput": outcome.result.goodput_timeline,
    });
    // Fault-bearing specs additionally report the world's fault log, so a
    // cached result shows what was injected and when. Keyed on the spec
    // (not the log) so fault-free scenarios keep their exact historical
    // bytes.
    if !spec.faults.is_empty() {
        if let serde_json::Value::Object(map) = &mut data {
            let log: Vec<String> = outcome
                .world
                .fault_log()
                .iter()
                .map(|(t, msg)| format!("{}ms {msg}", t.as_millis()))
                .collect();
            map.insert("fault_log".to_string(), serde_json::to_value(&log));
        }
    }
    data
}

/// Pretty-printed [`scenario_result_data`] — the exact bytes the farm
/// caches and the server serves.
pub fn scenario_result_text(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> String {
    serde_json::to_string_pretty(&scenario_result_data(spec, outcome)).expect("result serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            app: App::SockShop,
            trace: TraceShape::Steady,
            max_users: 400.0,
            duration_secs: 30,
            sla_ms: 400,
            hardware: Hardware::None,
            soft: SoftAdaptation::None,
            seed: 3,
            cart_threads: None,
            cart_cores: None,
            home_timeline_conns: None,
            drift_at_secs: None,
            shards: None,
            services: None,
            topo_seed: None,
            retry: None,
            net: None,
            faults: Vec::new(),
        }
    }

    #[test]
    fn json_round_trip_with_defaults() {
        let json = r#"{
            "app": "social_network",
            "trace": "LargeVariation",
            "max_users": 500.0,
            "duration_secs": 10,
            "sla_ms": 250
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.app, App::SocialNetwork);
        assert_eq!(spec.hardware, Hardware::None);
        assert_eq!(spec.soft, SoftAdaptation::None);
        let back = serde_json::to_string(&spec).unwrap();
        assert!(back.contains("social_network"));
    }

    #[test]
    fn parse_rejects_each_failure_mode_with_its_typed_error() {
        // Malformed JSON.
        match ScenarioSpec::parse("{not json").unwrap_err() {
            ScenarioError::Malformed { .. } => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Not an object.
        match ScenarioSpec::parse("[1, 2]").unwrap_err() {
            ScenarioError::Malformed { .. } => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Unknown field (a typo the derive would silently ignore).
        let typo = r#"{"app": "sock_shop", "trace": "Steady", "max_user": 10.0,
                       "duration_secs": 5, "sla_ms": 400}"#;
        match ScenarioSpec::parse(typo).unwrap_err() {
            ScenarioError::UnknownField { field } => assert_eq!(field, "max_user"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
        // Bad enum variant.
        let bad_trace = r#"{"app": "sock_shop", "trace": "NoSuchTrace", "max_users": 10.0,
                            "duration_secs": 5, "sla_ms": 400}"#;
        match ScenarioSpec::parse(bad_trace).unwrap_err() {
            ScenarioError::BadField { message } => {
                assert!(message.contains("NoSuchTrace"), "{message}")
            }
            other => panic!("expected BadField, got {other:?}"),
        }
        // Missing required field.
        let missing = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                          "sla_ms": 400}"#;
        match ScenarioSpec::parse(missing).unwrap_err() {
            ScenarioError::BadField { message } => {
                assert!(message.contains("duration_secs"), "{message}")
            }
            other => panic!("expected BadField, got {other:?}"),
        }
        // Out-of-range value.
        let zero_users = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 0.0,
                             "duration_secs": 5, "sla_ms": 400}"#;
        match ScenarioSpec::parse(zero_users).unwrap_err() {
            ScenarioError::InvalidValue { field, .. } => assert_eq!(field, "max_users"),
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        // Drift at or past the end of the run.
        let inverted = r#"{"app": "social_network", "trace": "Steady", "max_users": 10.0,
                           "duration_secs": 30, "sla_ms": 400, "drift_at_secs": 30}"#;
        match ScenarioSpec::parse(inverted).unwrap_err() {
            ScenarioError::InvertedWindow {
                drift_at_secs,
                duration_secs,
            } => {
                assert_eq!((drift_at_secs, duration_secs), (30, 30));
            }
            other => panic!("expected InvertedWindow, got {other:?}"),
        }
    }

    #[test]
    fn parse_accepts_valid_specs_and_errors_round_trip_as_json() {
        let ok = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                     "duration_secs": 5, "sla_ms": 400, "cart_threads": null}"#;
        let spec = ScenarioSpec::parse(ok).expect("valid spec with explicit null");
        assert_eq!(spec.cart_threads, None);

        let err = ScenarioSpec::parse("{not json").unwrap_err();
        let json = serde_json::to_string(&err).unwrap();
        let back: ScenarioError = serde_json::from_str(&json).unwrap();
        assert_eq!(err, back, "typed errors survive the wire");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn sock_shop_scenario_runs() {
        let outcome = base().run();
        assert!(outcome.summary.completed > 1_000);
        assert_eq!(outcome.summary.dropped, 0);
    }

    #[test]
    fn controller_stacks_compose() {
        // The three stacks are independent runs — fan them out through the
        // sweep harness (also exercising it against full scenario runs).
        let stacks = [
            (Hardware::Firm, SoftAdaptation::Sora),
            (Hardware::Vpa, SoftAdaptation::Conscale),
            (Hardware::Hpa, SoftAdaptation::None),
        ];
        let outcome = crate::Sweep::with_jobs(3).run(
            stacks
                .into_iter()
                .map(|(hw, soft)| {
                    crate::job(format!("{hw:?}/{soft:?}"), move || {
                        let spec = ScenarioSpec {
                            hardware: hw,
                            soft,
                            duration_secs: 20,
                            ..base()
                        };
                        spec.run().summary
                    })
                })
                .collect(),
        );
        for ((hw, soft), summary) in stacks.into_iter().zip(outcome.results) {
            assert!(summary.completed > 500, "{hw:?}/{soft:?}");
        }
    }

    #[test]
    fn social_network_drift_spec_runs() {
        let spec = ScenarioSpec {
            app: App::SocialNetwork,
            max_users: 600.0,
            drift_at_secs: Some(15),
            duration_secs: 30,
            ..base()
        };
        let outcome = spec.run();
        assert!(outcome.summary.completed > 1_000);
    }

    #[test]
    fn shards_out_of_range_is_rejected_with_typed_error() {
        let zero = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                       "duration_secs": 5, "sla_ms": 400, "shards": 0}"#;
        match ScenarioSpec::parse(zero).unwrap_err() {
            ScenarioError::InvalidValue { field, .. } => assert_eq!(field, "shards"),
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        let huge = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                       "duration_secs": 5, "sla_ms": 400, "shards": 65}"#;
        match ScenarioSpec::parse(huge).unwrap_err() {
            ScenarioError::InvalidValue { field, message } => {
                assert_eq!(field, "shards");
                assert!(message.contains("64"), "{message}");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        // Negative and fractional counts fail at the deserializer.
        let neg = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                      "duration_secs": 5, "sla_ms": 400, "shards": -2}"#;
        assert!(matches!(
            ScenarioSpec::parse(neg).unwrap_err(),
            ScenarioError::BadField { .. }
        ));
    }

    #[test]
    fn extended_specs_round_trip_through_emit() {
        let spec = ScenarioSpec {
            app: App::SockShop,
            duration_secs: 20,
            retry: Some(RetrySpec {
                max_retries: Some(2),
                base_backoff_ms: None,
                max_backoff_ms: Some(2_000),
                jitter_frac: None,
                budget_ratio: None,
                budget_cap: Some(10.0),
            }),
            net: Some(NetSpec {
                latency_us: Some(200),
                loss: Some(0.01),
                duplicate: None,
                call_timeout_ms: Some(1_000),
                max_call_retries: Some(1),
            }),
            faults: vec![
                FaultSpec::Crash {
                    service: 1,
                    at_ms: 5_000,
                    restart_after_ms: Some(2_000),
                },
                FaultSpec::Partition {
                    a: 0,
                    b: 1,
                    at_ms: 8_000,
                    duration_ms: 3_000,
                },
                FaultSpec::TelemetryBlackout {
                    at_ms: 12_000,
                    duration_ms: 2_000,
                    lag: true,
                },
            ],
            ..base()
        };
        spec.validate().expect("valid extended spec");
        let back = ScenarioSpec::parse(&spec.emit()).expect("emit parses");
        assert_eq!(back, spec, "parse(emit(spec)) == spec");
        // And again: emission is a fixed point.
        assert_eq!(back.emit(), spec.emit());
    }

    #[test]
    fn app_mismatched_knobs_are_rejected() {
        // Silently-ignored knobs would make behaviourally identical specs
        // cache under different canon keys.
        let spec = ScenarioSpec {
            app: App::SocialNetwork,
            cart_threads: Some(5),
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvalidValue { field, .. } if field == "cart_threads"
        ));
        let spec = ScenarioSpec {
            home_timeline_conns: Some(10),
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvalidValue { field, .. } if field == "home_timeline_conns"
        ));
        let spec = ScenarioSpec {
            drift_at_secs: Some(10),
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvalidValue { field, .. } if field == "drift_at_secs"
        ));
        let spec = ScenarioSpec {
            services: Some(50),
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvalidValue { field, .. } if field == "services"
        ));
        // The inverted-window diagnosis still wins over the mismatch one.
        let spec = ScenarioSpec {
            drift_at_secs: Some(30),
            duration_secs: 30,
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvertedWindow { .. }
        ));
    }

    #[test]
    fn fault_specs_are_gated_by_the_schedule_validator() {
        // Service index out of range.
        let spec = ScenarioSpec {
            faults: vec![FaultSpec::Crash {
                service: 12,
                at_ms: 1_000,
                restart_after_ms: None,
            }],
            ..base()
        };
        let err = spec.validate().unwrap_err();
        assert!(
            err.to_string().contains("out of range"),
            "unexpected: {err}"
        );
        // Network faults without a network would be silently ignored.
        let spec = ScenarioSpec {
            faults: vec![FaultSpec::Partition {
                a: 0,
                b: 1,
                at_ms: 1_000,
                duration_ms: 1_000,
            }],
            ..base()
        };
        assert!(spec.validate().unwrap_err().to_string().contains("net"));
        // Windows straddling the horizon flow through validate_within.
        let spec = ScenarioSpec {
            duration_secs: 30,
            faults: vec![FaultSpec::Crash {
                service: 1,
                at_ms: 29_000,
                restart_after_ms: Some(5_000),
            }],
            ..base()
        };
        assert!(
            spec.validate().unwrap_err().to_string().contains("horizon"),
            "straddling crash restart must be rejected"
        );
        // Overlapping blackout windows flow through validate too.
        let spec = ScenarioSpec {
            faults: vec![
                FaultSpec::TelemetryBlackout {
                    at_ms: 1_000,
                    duration_ms: 5_000,
                    lag: false,
                },
                FaultSpec::TelemetryBlackout {
                    at_ms: 4_000,
                    duration_ms: 2_000,
                    lag: true,
                },
            ],
            ..base()
        };
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("overlapping"));
        // net + shards cannot coexist (the network asserts the classic
        // engine at install time; reject it here instead of panicking).
        let spec = ScenarioSpec {
            net: Some(NetSpec {
                latency_us: Some(100),
                loss: None,
                duplicate: None,
                call_timeout_ms: None,
                max_call_retries: None,
            }),
            shards: Some(2),
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvalidValue { field, .. } if field == "net"
        ));
    }

    #[test]
    fn generated_app_runs_and_respects_drift() {
        let spec = ScenarioSpec {
            app: App::Generated,
            services: Some(24),
            topo_seed: Some(7),
            max_users: 60.0,
            duration_secs: 20,
            drift_at_secs: Some(10),
            ..base()
        };
        spec.validate().expect("valid generated spec");
        let outcome = spec.run();
        assert!(outcome.summary.completed > 100, "{:?}", outcome.summary);
        // The focus service sits in the conn tier (layer depth-2).
        let widths = topo::layer_widths(24, 5);
        let first_conn: usize = widths[..3].iter().sum();
        assert_eq!(spec.focus(), ServiceId(first_conn as u32));
        // Missing `services` is rejected before it can panic the builder.
        let spec = ScenarioSpec {
            app: App::Generated,
            services: None,
            ..base()
        };
        assert!(matches!(
            spec.validate().unwrap_err(),
            ScenarioError::InvalidValue { field, .. } if field == "services"
        ));
    }

    #[test]
    fn faulted_and_retried_spec_runs_and_logs_faults() {
        let spec = ScenarioSpec {
            duration_secs: 20,
            retry: Some(RetrySpec {
                max_retries: Some(2),
                base_backoff_ms: Some(50),
                max_backoff_ms: None,
                jitter_frac: None,
                budget_ratio: None,
                budget_cap: None,
            }),
            faults: vec![FaultSpec::Crash {
                service: 1,
                at_ms: 5_000,
                restart_after_ms: Some(2_000),
            }],
            ..base()
        };
        spec.validate().expect("valid faulted spec");
        let outcome = spec.run();
        assert!(outcome.summary.completed > 500);
        assert!(
            outcome
                .world
                .fault_log()
                .iter()
                .any(|(_, m)| m.contains("crash")),
            "fault log records the crash: {:?}",
            outcome.world.fault_log()
        );
    }

    #[test]
    fn networked_spec_runs() {
        let spec = ScenarioSpec {
            duration_secs: 10,
            net: Some(NetSpec {
                latency_us: Some(150),
                loss: Some(0.001),
                duplicate: Some(0.01),
                call_timeout_ms: None,
                max_call_retries: None,
            }),
            ..base()
        };
        spec.validate().expect("valid networked spec");
        let outcome = spec.run();
        assert!(outcome.summary.completed > 200);
        assert!(outcome.world.network_stats().is_some());
    }

    #[test]
    fn sharded_scenario_is_shard_count_invariant() {
        // The sharded engine's sequential oracle (shards = 1) and a
        // 2-shard run must produce byte-identical result payloads; a
        // shard count above the app's service count clamps instead of
        // failing.
        let run_text = |shards: usize| {
            let spec = ScenarioSpec {
                shards: Some(shards),
                duration_secs: 10,
                ..base()
            };
            spec.validate().expect("valid spec");
            scenario_result_text(&base(), &spec.run())
        };
        let oracle = run_text(1);
        assert_eq!(oracle, run_text(2), "2-shard run diverged from oracle");
        assert_eq!(oracle, run_text(64), "clamped run diverged from oracle");
    }
}
