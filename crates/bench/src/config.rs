//! Declarative scenario configuration for the `run_scenario` CLI: describe
//! an experiment as JSON (application, workload trace, controller stack,
//! SLA) and run it without writing Rust.

use apps::{
    RunResult, Scenario, ScenarioConfig, SocialNetwork, SocialNetworkParams, SockShop,
    SockShopParams, Watch,
};
use autoscalers::{FirmConfig, FirmController, HpaConfig, HpaController, VpaConfig, VpaController};
use cluster::Millicores;
use microsim::{World, WorldConfig};
use scg::LocalizeConfig;
use serde::{Deserialize, Serialize};
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::{
    Controller, NullController, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig,
    SoraController,
};
use telemetry::ServiceId;
use workload::{Mix, RateCurve, TraceShape, UserPool};

/// Which benchmark application to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum App {
    /// The 11-service Sock Shop, driven on its Cart path.
    SockShop,
    /// The 36-service Social Network, driven on read-home-timeline.
    SocialNetwork,
}

/// The hardware autoscaler under (or without) Sora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum Hardware {
    /// No hardware scaling.
    #[default]
    None,
    /// Kubernetes Horizontal Pod Autoscaling on the focus service.
    Hpa,
    /// Kubernetes Vertical Pod Autoscaling on the focus service.
    Vpa,
    /// FIRM-style critical-instance vertical scaling.
    Firm,
}

/// The soft-resource adaptation layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum SoftAdaptation {
    /// Static pools (the paper's baseline).
    #[default]
    None,
    /// The latency-aware SCG adapter (Sora).
    Sora,
    /// The throughput-based SCT adapter (ConScale).
    Conscale,
}

/// A declarative experiment.
///
/// # Example
///
/// ```
/// let json = r#"{
///     "app": "sock_shop",
///     "trace": "SteepTriPhase",
///     "max_users": 1200.0,
///     "duration_secs": 60,
///     "sla_ms": 400,
///     "hardware": "firm",
///     "soft": "sora",
///     "seed": 1
/// }"#;
/// let cfg: sora_bench::config::ScenarioSpec = serde_json::from_str(json).unwrap();
/// let outcome = cfg.run();
/// assert!(outcome.summary.completed > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The application topology.
    pub app: App,
    /// The workload trace shape (e.g. `"SteepTriPhase"`, `"Steady"`).
    pub trace: TraceShape,
    /// Maximum concurrent users.
    pub max_users: f64,
    /// Run length in seconds.
    pub duration_secs: u64,
    /// End-to-end SLA (goodput threshold and Sora's deadline) in ms.
    pub sla_ms: u64,
    /// Hardware autoscaler.
    #[serde(default)]
    pub hardware: Hardware,
    /// Soft-resource adaptation.
    #[serde(default)]
    pub soft: SoftAdaptation,
    /// Run seed.
    #[serde(default)]
    pub seed: u64,
    /// Sock Shop: Cart thread-pool size (default 5).
    #[serde(default)]
    pub cart_threads: Option<usize>,
    /// Sock Shop: Cart CPU cores (default 2).
    #[serde(default)]
    pub cart_cores: Option<u32>,
    /// Social Network: Home-Timeline → Post Storage pool size (default 10).
    #[serde(default)]
    pub home_timeline_conns: Option<usize>,
    /// Social Network: flip to heavy reads at this second.
    #[serde(default)]
    pub drift_at_secs: Option<u64>,
    /// World-engine shard count (DESIGN §14): `1` runs the sharded
    /// engine's sequential oracle, `N` partitions services across `N`
    /// concurrent shards — byte-identical outputs either way. Omitted
    /// (the default) keeps the classic single-wheel engine. Values are
    /// clamped to the app's service count at build time; `0` and values
    /// above 64 are rejected at parse time.
    #[serde(default)]
    pub shards: Option<usize>,
}

/// Why a scenario config was rejected. Typed (rather than a panic or a
/// stringly error) so `sora-server` can map each cause onto a structured
/// error reply and keep serving, and so the CLI can print a precise
/// diagnosis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScenarioError {
    /// The text is not valid JSON, or its top level is not an object.
    Malformed {
        /// The parser's message.
        message: String,
    },
    /// A top-level field the schema does not define — almost always a typo
    /// that would otherwise be silently ignored.
    UnknownField {
        /// The offending field name.
        field: String,
    },
    /// A known field failed to deserialize (wrong type, unknown enum
    /// variant, missing required field).
    BadField {
        /// The deserializer's message.
        message: String,
    },
    /// A field deserialized but its value is outside the physically
    /// meaningful range.
    InvalidValue {
        /// The offending field name.
        field: String,
        /// Why the value is rejected.
        message: String,
    },
    /// The drift switch does not fall inside the run window.
    InvertedWindow {
        /// The configured `drift_at_secs`.
        drift_at_secs: u64,
        /// The configured `duration_secs`.
        duration_secs: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Malformed { message } => {
                write!(f, "malformed scenario JSON: {message}")
            }
            ScenarioError::UnknownField { field } => {
                write!(f, "unknown scenario field `{field}`")
            }
            ScenarioError::BadField { message } => {
                write!(f, "invalid scenario field: {message}")
            }
            ScenarioError::InvalidValue { field, message } => {
                write!(f, "invalid value for `{field}`: {message}")
            }
            ScenarioError::InvertedWindow {
                drift_at_secs,
                duration_secs,
            } => write!(
                f,
                "drift_at_secs ({drift_at_secs}) must fall inside the run \
                 (duration_secs = {duration_secs})"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// What a scenario run produces.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Timelines and summary.
    pub result: RunResult,
    /// Convenience copy of the summary.
    pub summary: apps::Summary,
    /// The final world for post-hoc queries.
    pub world: World,
}

impl ScenarioSpec {
    /// Every top-level field the schema defines. `parse` rejects anything
    /// else: the derive-level deserializer ignores unknown keys, which
    /// would silently turn a typo (`"max_user"`) into a default value.
    pub const KNOWN_FIELDS: [&'static str; 13] = [
        "app",
        "trace",
        "max_users",
        "duration_secs",
        "sla_ms",
        "hardware",
        "soft",
        "seed",
        "cart_threads",
        "cart_cores",
        "home_timeline_conns",
        "drift_at_secs",
        "shards",
    ];

    /// Parses and validates a scenario config, reporting the first problem
    /// as a typed [`ScenarioError`]: malformed JSON, an unknown field, a
    /// field that fails to deserialize, an out-of-range value, or an
    /// inverted drift window.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let value = serde_json::parse(text).map_err(|e| ScenarioError::Malformed {
            message: e.to_string(),
        })?;
        let obj = value.as_object().ok_or_else(|| ScenarioError::Malformed {
            message: "scenario config must be a JSON object".to_string(),
        })?;
        for (key, _) in obj.iter() {
            if !Self::KNOWN_FIELDS.contains(&key.as_str()) {
                return Err(ScenarioError::UnknownField { field: key.clone() });
            }
        }
        let spec: ScenarioSpec =
            serde_json::from_value(&value).map_err(|e| ScenarioError::BadField {
                message: e.to_string(),
            })?;
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the semantic constraints `parse` enforces after
    /// deserialization. Public so specs built in Rust get the same
    /// screening as specs read from JSON.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |field: &str, message: String| ScenarioError::InvalidValue {
            field: field.to_string(),
            message,
        };
        if !self.max_users.is_finite() || self.max_users <= 0.0 {
            return Err(invalid(
                "max_users",
                format!("must be a finite positive number, got {}", self.max_users),
            ));
        }
        if self.duration_secs == 0 {
            return Err(invalid("duration_secs", "must be positive".to_string()));
        }
        if self.sla_ms == 0 {
            return Err(invalid("sla_ms", "must be positive".to_string()));
        }
        if self.cart_threads == Some(0) {
            return Err(invalid(
                "cart_threads",
                "the pool needs at least one thread".to_string(),
            ));
        }
        if self.cart_cores == Some(0) {
            return Err(invalid(
                "cart_cores",
                "the Cart pod needs at least one core".to_string(),
            ));
        }
        if self.home_timeline_conns == Some(0) {
            return Err(invalid(
                "home_timeline_conns",
                "the pool needs at least one connection".to_string(),
            ));
        }
        if let Some(at) = self.drift_at_secs {
            if at >= self.duration_secs {
                return Err(ScenarioError::InvertedWindow {
                    drift_at_secs: at,
                    duration_secs: self.duration_secs,
                });
            }
        }
        match self.shards {
            Some(0) => {
                return Err(invalid(
                    "shards",
                    "the world needs at least one shard".to_string(),
                ));
            }
            Some(n) if n > 64 => {
                return Err(invalid(
                    "shards",
                    format!("at most 64 shards are supported, got {n}"),
                ));
            }
            _ => {}
        }
        Ok(())
    }

    /// The service the controllers focus on (Cart / Post Storage).
    fn focus(&self) -> ServiceId {
        match self.app {
            App::SockShop => ServiceId(1),
            App::SocialNetwork => ServiceId(2),
        }
    }

    /// The tunable soft resource of the app.
    fn soft_resource(&self) -> SoftResource {
        match self.app {
            App::SockShop => SoftResource::ThreadPool {
                service: ServiceId(1),
            },
            App::SocialNetwork => SoftResource::ConnPool {
                caller: ServiceId(1),
                target: ServiceId(2),
            },
        }
    }

    fn build_controller(&self) -> Box<dyn Controller> {
        let focus = self.focus();
        let hardware: Box<dyn Controller> = match self.hardware {
            Hardware::None => Box::new(NullController),
            Hardware::Hpa => Box::new(HpaController::new(focus, HpaConfig::default())),
            Hardware::Vpa => Box::new(VpaController::new(focus, VpaConfig::default())),
            Hardware::Firm => Box::new(FirmController::new(FirmConfig {
                services: vec![focus],
                localize: LocalizeConfig {
                    min_on_path: 30,
                    ..Default::default()
                },
                min_limit: Millicores::from_cores(1),
                max_limit: Millicores::from_cores(4),
                ..Default::default()
            })),
        };
        let registry =
            ResourceRegistry::new().with(self.soft_resource(), ResourceBounds { min: 2, max: 256 });
        let sora_config = SoraConfig {
            sla: SimDuration::from_millis(self.sla_ms),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            ..Default::default()
        };
        match self.soft {
            SoftAdaptation::None => hardware,
            SoftAdaptation::Sora => Box::new(SoraController::sora(sora_config, registry, hardware)),
            SoftAdaptation::Conscale => {
                Box::new(SoraController::conscale(sora_config, registry, hardware))
            }
        }
    }

    /// Builds the world, the closed-loop scenario driver and the controller
    /// stack without running anything — the seam `sora-server` live
    /// sessions step incrementally. [`ScenarioSpec::run`] is exactly
    /// `build()` followed by `Scenario::run`, so both paths produce
    /// byte-identical results.
    pub fn build(&self) -> BuiltScenario {
        let world_config = WorldConfig {
            trace_sample_every: 10,
            ..Default::default()
        };
        let curve = RateCurve::new(
            self.trace,
            self.max_users,
            SimDuration::from_secs(self.duration_secs),
        );
        let pool = UserPool::new(
            curve,
            Dist::exponential_ms(crate::scenarios::THINK_MS),
            SimRng::seed_from(self.seed ^ 0xABCD),
        );
        let scenario_config = ScenarioConfig {
            report_rtt: SimDuration::from_millis(self.sla_ms),
            ..Default::default()
        };
        let controller = self.build_controller();
        let (scenario, world) = match self.app {
            App::SockShop => {
                let shop = SockShop::build_with_config(
                    SockShopParams {
                        cart_threads: self.cart_threads.unwrap_or(5),
                        cart_cores: self.cart_cores.unwrap_or(2),
                        ..Default::default()
                    },
                    world_config,
                    SimRng::seed_from(self.seed),
                );
                let scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(shop.get_cart),
                    Watch {
                        service: shop.cart,
                        conns: None,
                    },
                );
                (scenario, shop.world)
            }
            App::SocialNetwork => {
                let sn = SocialNetwork::build_with_config(
                    SocialNetworkParams {
                        home_timeline_conns: self.home_timeline_conns.unwrap_or(10),
                        ..Default::default()
                    },
                    world_config,
                    SimRng::seed_from(self.seed),
                );
                let mut scenario = Scenario::new(
                    scenario_config,
                    pool,
                    Mix::single(sn.read_home_timeline_light),
                    Watch {
                        service: sn.post_storage,
                        conns: Some((sn.home_timeline, sn.post_storage)),
                    },
                );
                if let Some(at) = self.drift_at_secs {
                    scenario = scenario.with_mix_change(
                        SimTime::from_secs(at),
                        Mix::single(sn.read_home_timeline_heavy),
                    );
                }
                (scenario, sn.world)
            }
        };
        let mut world = world;
        if let Some(n) = self.shards {
            // Validated to 1..=64 by `validate`; the app's service count
            // is the remaining physical ceiling.
            let n = n.clamp(1, world.service_count());
            world
                .enable_sharding(n)
                .expect("freshly built world accepts sharding");
        }
        BuiltScenario {
            world,
            scenario,
            controller,
        }
    }

    /// Builds and runs the scenario.
    pub fn run(&self) -> ScenarioOutcome {
        let BuiltScenario {
            mut world,
            scenario,
            mut controller,
        } = self.build();
        let result = scenario.run(&mut world, controller.as_mut());
        let summary = result.summary;
        ScenarioOutcome {
            result,
            summary,
            world,
        }
    }
}

/// A scenario ready to run: the pieces [`ScenarioSpec::build`] assembles.
pub struct BuiltScenario {
    /// The simulated cluster.
    pub world: World,
    /// The closed-loop scenario driver.
    pub scenario: Scenario,
    /// The controller stack (hardware autoscaler, optionally wrapped by
    /// Sora/ConScale).
    pub controller: Box<dyn Controller>,
}

/// The canonical result payload of a scenario run — the `data` block of
/// `results/scenario_<name>.json` and the body `sora-server` returns over
/// the wire. Both sides build it here, which is what makes the wire and
/// in-process outputs byte-identical.
pub fn scenario_result_data(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> serde_json::Value {
    serde_json::json!({
        "spec": spec,
        "summary": outcome.summary,
        "timeline": outcome.result.timeline,
        "rt": outcome.result.rt_timeline,
        "goodput": outcome.result.goodput_timeline,
    })
}

/// Pretty-printed [`scenario_result_data`] — the exact bytes the farm
/// caches and the server serves.
pub fn scenario_result_text(spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> String {
    serde_json::to_string_pretty(&scenario_result_data(spec, outcome)).expect("result serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            app: App::SockShop,
            trace: TraceShape::Steady,
            max_users: 400.0,
            duration_secs: 30,
            sla_ms: 400,
            hardware: Hardware::None,
            soft: SoftAdaptation::None,
            seed: 3,
            cart_threads: None,
            cart_cores: None,
            home_timeline_conns: None,
            drift_at_secs: None,
            shards: None,
        }
    }

    #[test]
    fn json_round_trip_with_defaults() {
        let json = r#"{
            "app": "social_network",
            "trace": "LargeVariation",
            "max_users": 500.0,
            "duration_secs": 10,
            "sla_ms": 250
        }"#;
        let spec: ScenarioSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec.app, App::SocialNetwork);
        assert_eq!(spec.hardware, Hardware::None);
        assert_eq!(spec.soft, SoftAdaptation::None);
        let back = serde_json::to_string(&spec).unwrap();
        assert!(back.contains("social_network"));
    }

    #[test]
    fn parse_rejects_each_failure_mode_with_its_typed_error() {
        // Malformed JSON.
        match ScenarioSpec::parse("{not json").unwrap_err() {
            ScenarioError::Malformed { .. } => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Not an object.
        match ScenarioSpec::parse("[1, 2]").unwrap_err() {
            ScenarioError::Malformed { .. } => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Unknown field (a typo the derive would silently ignore).
        let typo = r#"{"app": "sock_shop", "trace": "Steady", "max_user": 10.0,
                       "duration_secs": 5, "sla_ms": 400}"#;
        match ScenarioSpec::parse(typo).unwrap_err() {
            ScenarioError::UnknownField { field } => assert_eq!(field, "max_user"),
            other => panic!("expected UnknownField, got {other:?}"),
        }
        // Bad enum variant.
        let bad_trace = r#"{"app": "sock_shop", "trace": "NoSuchTrace", "max_users": 10.0,
                            "duration_secs": 5, "sla_ms": 400}"#;
        match ScenarioSpec::parse(bad_trace).unwrap_err() {
            ScenarioError::BadField { message } => {
                assert!(message.contains("NoSuchTrace"), "{message}")
            }
            other => panic!("expected BadField, got {other:?}"),
        }
        // Missing required field.
        let missing = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                          "sla_ms": 400}"#;
        match ScenarioSpec::parse(missing).unwrap_err() {
            ScenarioError::BadField { message } => {
                assert!(message.contains("duration_secs"), "{message}")
            }
            other => panic!("expected BadField, got {other:?}"),
        }
        // Out-of-range value.
        let zero_users = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 0.0,
                             "duration_secs": 5, "sla_ms": 400}"#;
        match ScenarioSpec::parse(zero_users).unwrap_err() {
            ScenarioError::InvalidValue { field, .. } => assert_eq!(field, "max_users"),
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        // Drift at or past the end of the run.
        let inverted = r#"{"app": "social_network", "trace": "Steady", "max_users": 10.0,
                           "duration_secs": 30, "sla_ms": 400, "drift_at_secs": 30}"#;
        match ScenarioSpec::parse(inverted).unwrap_err() {
            ScenarioError::InvertedWindow {
                drift_at_secs,
                duration_secs,
            } => {
                assert_eq!((drift_at_secs, duration_secs), (30, 30));
            }
            other => panic!("expected InvertedWindow, got {other:?}"),
        }
    }

    #[test]
    fn parse_accepts_valid_specs_and_errors_round_trip_as_json() {
        let ok = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                     "duration_secs": 5, "sla_ms": 400, "cart_threads": null}"#;
        let spec = ScenarioSpec::parse(ok).expect("valid spec with explicit null");
        assert_eq!(spec.cart_threads, None);

        let err = ScenarioSpec::parse("{not json").unwrap_err();
        let json = serde_json::to_string(&err).unwrap();
        let back: ScenarioError = serde_json::from_str(&json).unwrap();
        assert_eq!(err, back, "typed errors survive the wire");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn sock_shop_scenario_runs() {
        let outcome = base().run();
        assert!(outcome.summary.completed > 1_000);
        assert_eq!(outcome.summary.dropped, 0);
    }

    #[test]
    fn controller_stacks_compose() {
        // The three stacks are independent runs — fan them out through the
        // sweep harness (also exercising it against full scenario runs).
        let stacks = [
            (Hardware::Firm, SoftAdaptation::Sora),
            (Hardware::Vpa, SoftAdaptation::Conscale),
            (Hardware::Hpa, SoftAdaptation::None),
        ];
        let outcome = crate::Sweep::with_jobs(3).run(
            stacks
                .into_iter()
                .map(|(hw, soft)| {
                    crate::job(format!("{hw:?}/{soft:?}"), move || {
                        let spec = ScenarioSpec {
                            hardware: hw,
                            soft,
                            duration_secs: 20,
                            ..base()
                        };
                        spec.run().summary
                    })
                })
                .collect(),
        );
        for ((hw, soft), summary) in stacks.into_iter().zip(outcome.results) {
            assert!(summary.completed > 500, "{hw:?}/{soft:?}");
        }
    }

    #[test]
    fn social_network_drift_spec_runs() {
        let spec = ScenarioSpec {
            app: App::SocialNetwork,
            max_users: 600.0,
            drift_at_secs: Some(15),
            duration_secs: 30,
            ..base()
        };
        let outcome = spec.run();
        assert!(outcome.summary.completed > 1_000);
    }

    #[test]
    fn shards_out_of_range_is_rejected_with_typed_error() {
        let zero = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                       "duration_secs": 5, "sla_ms": 400, "shards": 0}"#;
        match ScenarioSpec::parse(zero).unwrap_err() {
            ScenarioError::InvalidValue { field, .. } => assert_eq!(field, "shards"),
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        let huge = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                       "duration_secs": 5, "sla_ms": 400, "shards": 65}"#;
        match ScenarioSpec::parse(huge).unwrap_err() {
            ScenarioError::InvalidValue { field, message } => {
                assert_eq!(field, "shards");
                assert!(message.contains("64"), "{message}");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
        // Negative and fractional counts fail at the deserializer.
        let neg = r#"{"app": "sock_shop", "trace": "Steady", "max_users": 10.0,
                      "duration_secs": 5, "sla_ms": 400, "shards": -2}"#;
        assert!(matches!(
            ScenarioSpec::parse(neg).unwrap_err(),
            ScenarioError::BadField { .. }
        ));
    }

    #[test]
    fn sharded_scenario_is_shard_count_invariant() {
        // The sharded engine's sequential oracle (shards = 1) and a
        // 2-shard run must produce byte-identical result payloads; a
        // shard count above the app's service count clamps instead of
        // failing.
        let run_text = |shards: usize| {
            let spec = ScenarioSpec {
                shards: Some(shards),
                duration_secs: 10,
                ..base()
            };
            spec.validate().expect("valid spec");
            scenario_result_text(&base(), &spec.run())
        };
        let oracle = run_text(1);
        assert_eq!(oracle, run_text(2), "2-shard run diverged from oracle");
        assert_eq!(oracle, run_text(64), "clamped run diverged from oracle");
    }
}
