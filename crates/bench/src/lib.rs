//! Shared machinery of the experiment harness: scenario presets
//! calibrated to the paper's setups, plus table/JSON reporting.
//!
//! Each `src/bin/figXX_*` / `src/bin/tabXX_*` binary regenerates one table
//! or figure of the paper; see DESIGN.md's per-experiment index. Binaries
//! accept `--quick` to run a shortened variant (useful in CI); the default
//! reproduces the paper's full 12-minute runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod report;
pub mod scenarios;
pub mod sweep;

pub use config::{
    scenario_result_data, scenario_result_text, BuiltScenario, ScenarioError, ScenarioOutcome,
    ScenarioSpec,
};
pub use report::{print_table, save_json, save_json_with_perf, Table};
pub use scenarios::{
    cart_run, cart_world, drift_run, post_storage_goodput, sweep_cart_goodput,
    sweep_cart_goodput_outcome, CartSetup, DriftSetup, MonitoredCase,
};
pub use sweep::{
    ctx_job, job, CtxJob, CtxOutcome, Job, PerfMetrics, PerfTimer, RunStat, Sweep, SweepOutcome,
};

/// Returns `true` when `--quick` was passed on the command line.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Experiment duration: the paper's 12 minutes, or 3 in quick mode.
pub fn trace_secs() -> u64 {
    if quick_mode() {
        180
    } else {
        720
    }
}
