//! Scenario presets calibrated to the paper's experimental setups.

use apps::{
    RunResult, Scenario, ScenarioConfig, SocialNetwork, SocialNetworkParams, SockShop,
    SockShopParams, Watch,
};
use microsim::{World, WorldConfig};
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_core::Controller;
use workload::{Mix, RateCurve, TraceShape, UserPool};

/// Mean user think time (the RUBBoS emulation): 3 500 users at ~2.5 s think
/// time offer ≈ 1 400 req/s at peak — just inside a 4-core Cart's capacity
/// and nearly double a 2-core Cart's, which is exactly the regime the
/// paper's Figs. 10–11 operate in.
pub const THINK_MS: f64 = 2_500.0;

/// A Sock Shop Cart-path experiment.
#[derive(Debug, Clone, Copy)]
pub struct CartSetup {
    /// The workload trace shape.
    pub shape: TraceShape,
    /// Maximum concurrent users (3 500 in §5.2).
    pub max_users: f64,
    /// Run length in seconds (720 in the paper).
    pub secs: u64,
    /// Topology knobs.
    pub params: SockShopParams,
    /// Goodput threshold for reporting.
    pub report_rtt: SimDuration,
    /// Run seed.
    pub seed: u64,
}

impl Default for CartSetup {
    fn default() -> Self {
        CartSetup {
            shape: TraceShape::SteepTriPhase,
            max_users: 3_500.0,
            secs: 720,
            params: SockShopParams::default(),
            report_rtt: SimDuration::from_millis(400),
            seed: 42,
        }
    }
}

/// World config for full-length runs: sampled trace warehouse so a
/// 12-minute, ~1 400 req/s run keeps bounded memory (the metrics samplers
/// feeding the SCG model are unaffected by warehouse sampling).
fn run_world_config() -> WorldConfig {
    WorldConfig {
        trace_sample_every: 10,
        ..WorldConfig::default()
    }
}

/// Builds the Sock Shop world for a [`CartSetup`] (exposed for experiments
/// that need direct world access, e.g. the Fig. 4 histogram study).
pub fn cart_world(setup: &CartSetup) -> SockShop {
    SockShop::build_with_config(
        setup.params,
        run_world_config(),
        SimRng::seed_from(setup.seed),
    )
}

/// Runs a Cart-path scenario under `controller`, returning the run result
/// and the final world (whose client log allows extra post-hoc queries,
/// e.g. goodput under several thresholds for Table 3).
pub fn cart_run(setup: &CartSetup, controller: &mut dyn Controller) -> (RunResult, World) {
    let mut shop = cart_world(setup);
    let curve = RateCurve::new(
        setup.shape,
        setup.max_users,
        SimDuration::from_secs(setup.secs),
    );
    let pool = UserPool::new(
        curve,
        Dist::exponential_ms(THINK_MS),
        SimRng::seed_from(setup.seed ^ 0x9e37),
    );
    let watch = Watch {
        service: shop.cart,
        conns: None,
    };
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: setup.report_rtt,
            ..Default::default()
        },
        pool,
        Mix::single(shop.get_cart),
        watch,
    );
    let result = scenario.run(&mut shop.world, controller);
    (result, shop.world)
}

/// Sweeps the Cart thread pool under a steady workload (the Figs. 3(a–d) /
/// 9(a) validation methodology): returns `(pool_size, goodput_rps)` pairs,
/// goodput measured against `threshold` after a warm-up third.
///
/// The per-pool runs are independent and fan out across the [`crate::Sweep`]
/// harness ([`crate::Sweep::from_env`] resolves the worker count); pairs come
/// back in `pool_sizes` order regardless of completion order.
pub fn sweep_cart_goodput(
    pool_sizes: &[usize],
    cart_cores: u32,
    users: f64,
    secs: u64,
    threshold: SimDuration,
    seed: u64,
) -> Vec<(usize, f64)> {
    sweep_cart_goodput_outcome(pool_sizes, cart_cores, users, secs, threshold, seed).results
}

/// [`sweep_cart_goodput`] with the sweep's perf record attached (for
/// binaries archiving wall-clock into `results/*.json`).
pub fn sweep_cart_goodput_outcome(
    pool_sizes: &[usize],
    cart_cores: u32,
    users: f64,
    secs: u64,
    threshold: SimDuration,
    seed: u64,
) -> crate::SweepOutcome<(usize, f64)> {
    let jobs = pool_sizes
        .iter()
        .map(|&pool| {
            crate::job(format!("cart-pool-{pool}"), move || {
                let setup = CartSetup {
                    shape: TraceShape::Steady,
                    max_users: users,
                    secs,
                    params: SockShopParams {
                        cart_cores,
                        cart_threads: pool,
                        ..SockShopParams::default()
                    },
                    report_rtt: threshold,
                    seed,
                };
                let mut null = sora_core::NullController;
                let (_, world) = cart_run(&setup, &mut null);
                let warmup = SimTime::from_secs(secs / 3);
                let end = SimTime::from_secs(secs);
                (pool, world.client().goodput_rate(warmup, end, threshold))
            })
        })
        .collect();
    crate::Sweep::from_env().run(jobs)
}

/// A Social Network read-home-timeline experiment (the §5.3 setup).
#[derive(Debug, Clone, Copy)]
pub struct DriftSetup {
    /// The workload trace shape.
    pub shape: TraceShape,
    /// Maximum concurrent users (4 500 in §5.3).
    pub max_users: f64,
    /// Run length in seconds.
    pub secs: u64,
    /// When the request type flips from light to heavy (451 s in Fig. 12);
    /// `None` disables the drift.
    pub drift_at_secs: Option<u64>,
    /// Topology knobs.
    pub params: SocialNetworkParams,
    /// Goodput threshold for reporting.
    pub report_rtt: SimDuration,
    /// Run seed.
    pub seed: u64,
}

impl Default for DriftSetup {
    fn default() -> Self {
        DriftSetup {
            shape: TraceShape::LargeVariation,
            max_users: 4_500.0,
            secs: 720,
            drift_at_secs: Some(451),
            params: SocialNetworkParams::default(),
            report_rtt: SimDuration::from_millis(400),
            seed: 77,
        }
    }
}

/// Runs a Social Network scenario with the optional light→heavy drift.
pub fn drift_run(setup: &DriftSetup, controller: &mut dyn Controller) -> (RunResult, World) {
    let mut sn = SocialNetwork::build_with_config(
        setup.params,
        run_world_config(),
        SimRng::seed_from(setup.seed),
    );
    let curve = RateCurve::new(
        setup.shape,
        setup.max_users,
        SimDuration::from_secs(setup.secs),
    );
    let pool = UserPool::new(
        curve,
        Dist::exponential_ms(THINK_MS),
        SimRng::seed_from(setup.seed ^ 0x51ca),
    );
    let watch = Watch {
        service: sn.post_storage,
        conns: Some((sn.home_timeline, sn.post_storage)),
    };
    let mut scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: setup.report_rtt,
            ..Default::default()
        },
        pool,
        Mix::single(sn.read_home_timeline_light),
        watch,
    );
    if let Some(at) = setup.drift_at_secs {
        scenario = scenario.with_mix_change(
            SimTime::from_secs(at),
            Mix::single(sn.read_home_timeline_heavy),
        );
    }
    let result = scenario.run(&mut sn.world, controller);
    (result, sn.world)
}

/// Goodput of the read-home-timeline path for one Home-Timeline →
/// Post Storage pool size under a steady workload (the Figs. 3(e–f) / 9(c)
/// sweep).
pub fn post_storage_goodput(
    conns: usize,
    heavy: bool,
    post_storage_cores: u32,
    users: f64,
    secs: u64,
    threshold: SimDuration,
    seed: u64,
) -> f64 {
    let mut sn = SocialNetwork::build_with_config(
        SocialNetworkParams {
            home_timeline_conns: conns,
            post_storage_cores,
            ..Default::default()
        },
        run_world_config(),
        SimRng::seed_from(seed),
    );
    let curve = RateCurve::new(TraceShape::Steady, users, SimDuration::from_secs(secs));
    let pool = UserPool::new(
        curve,
        Dist::exponential_ms(THINK_MS),
        SimRng::seed_from(seed ^ 0x51ca),
    );
    let rt = if heavy {
        sn.read_home_timeline_heavy
    } else {
        sn.read_home_timeline_light
    };
    let watch = Watch {
        service: sn.post_storage,
        conns: None,
    };
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: threshold,
            ..Default::default()
        },
        pool,
        Mix::single(rt),
        watch,
    );
    let mut null = sora_core::NullController;
    let result = scenario.run(&mut sn.world, &mut null);
    let warmup = SimTime::from_secs(secs / 3);
    let _ = result;
    sn.world
        .client()
        .goodput_rate(warmup, SimTime::from_secs(secs), threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sora_core::NullController;

    #[test]
    fn cart_run_produces_sane_short_run() {
        let setup = CartSetup {
            secs: 30,
            max_users: 400.0,
            shape: TraceShape::Steady,
            ..Default::default()
        };
        let mut ctl = NullController;
        let (res, world) = cart_run(&setup, &mut ctl);
        assert!(res.summary.completed > 2_000, "{:?}", res.summary);
        assert!(world.client().total() == res.summary.completed);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep_cart_goodput(&[5, 30], 2, 400.0, 20, SimDuration::from_millis(250), 1);
        let b = sweep_cart_goodput(&[5, 30], 2, 400.0, 20, SimDuration::from_millis(250), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn drift_run_switches_request_type() {
        let setup = DriftSetup {
            secs: 30,
            max_users: 300.0,
            drift_at_secs: Some(15),
            shape: TraceShape::Steady,
            ..Default::default()
        };
        let mut ctl = NullController;
        let (res, _world) = drift_run(&setup, &mut ctl);
        assert!(res.summary.completed > 1_000);
        // Heavy phase raises mean RT visibly.
        let early: f64 = res.rt_timeline[3..12].iter().map(|p| p.1).sum::<f64>() / 9.0;
        let late: f64 = res.rt_timeline[20..28].iter().map(|p| p.1).sum::<f64>() / 8.0;
        assert!(late > early, "drift raises RT: {early:.1} → {late:.1}");
    }
}

/// One of the three monitored-service case studies of Figs. 9 / Table 1:
/// which soft resource is generous-then-estimated, which service the SCG
/// model watches, and the calibrated workload that saturates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitoredCase {
    /// Threads in the 4-core Cart (Fig. 9a), 10 ms threshold.
    CartThreads,
    /// DB connections in Catalogue toward a 2-core Catalogue-db
    /// (Fig. 9b), 10 ms threshold.
    CatalogueConns,
    /// Request connections from Home-Timeline to a 4-core Post Storage
    /// (Fig. 9c), 15 ms threshold.
    PostStorageConns,
}

impl MonitoredCase {
    /// The per-span response-time threshold the model estimates under.
    pub fn threshold(self) -> SimDuration {
        match self {
            MonitoredCase::CartThreads | MonitoredCase::CatalogueConns => {
                SimDuration::from_millis(10)
            }
            MonitoredCase::PostStorageConns => SimDuration::from_millis(15),
        }
    }

    /// The generous allocation used for estimation runs (past the knee).
    pub fn generous_allocation(self) -> usize {
        match self {
            MonitoredCase::CartThreads => 60,
            MonitoredCase::CatalogueConns | MonitoredCase::PostStorageConns => 40,
        }
    }

    /// The monitored service's id in the respective topology.
    pub fn monitored_service(self) -> telemetry::ServiceId {
        match self {
            MonitoredCase::CartThreads => telemetry::ServiceId(1), // cart
            MonitoredCase::CatalogueConns => telemetry::ServiceId(4), // catalogue-db
            MonitoredCase::PostStorageConns => telemetry::ServiceId(2), // post-storage
        }
    }

    /// Runs the case's calibrated steady workload with the soft resource at
    /// `allocation`, returning the final world.
    pub fn run(self, allocation: usize, secs: u64, seed: u64) -> World {
        let world = self.run_inner(allocation, secs, seed);
        #[cfg(feature = "audit")]
        assert_eq!(
            world.audit().total(),
            0,
            "{self:?}/{allocation}: {}",
            world.audit().summary()
        );
        world
    }

    fn run_inner(self, allocation: usize, secs: u64, seed: u64) -> World {
        match self {
            MonitoredCase::CartThreads => {
                let setup = CartSetup {
                    shape: TraceShape::Steady,
                    // ρ ≈ 0.85 at the generous allocation: the estimation
                    // run must fluctuate, not sit pinned in overload.
                    max_users: 2_600.0,
                    secs,
                    params: SockShopParams {
                        cart_cores: 4,
                        cart_threads: allocation,
                        ..Default::default()
                    },
                    report_rtt: self.threshold(),
                    seed,
                };
                let mut null = sora_core::NullController;
                cart_run(&setup, &mut null).1
            }
            MonitoredCase::CatalogueConns => {
                let mut shop = apps::SockShop::build_with_config(
                    SockShopParams {
                        catalogue_db_conns: allocation,
                        catalogue_db_cores: 2,
                        ..Default::default()
                    },
                    run_world_config(),
                    SimRng::seed_from(seed),
                );
                let curve =
                    RateCurve::new(TraceShape::Steady, 1_600.0, SimDuration::from_secs(secs));
                let pool = UserPool::new(
                    curve,
                    Dist::exponential_ms(THINK_MS),
                    SimRng::seed_from(seed ^ 0x77),
                );
                let scenario = apps::Scenario::new(
                    ScenarioConfig::default(),
                    pool,
                    Mix::single(shop.get_catalogue),
                    Watch {
                        service: shop.catalogue,
                        conns: None,
                    },
                );
                let mut null = sora_core::NullController;
                let _ = scenario.run(&mut shop.world, &mut null);
                shop.world
            }
            MonitoredCase::PostStorageConns => {
                let mut sn = SocialNetwork::build_with_config(
                    SocialNetworkParams {
                        home_timeline_conns: allocation,
                        post_storage_cores: 4,
                        ..Default::default()
                    },
                    run_world_config(),
                    SimRng::seed_from(seed),
                );
                let curve =
                    RateCurve::new(TraceShape::Steady, 4_200.0, SimDuration::from_secs(secs));
                let pool = UserPool::new(
                    curve,
                    Dist::exponential_ms(THINK_MS),
                    SimRng::seed_from(seed ^ 0x77),
                );
                let scenario = apps::Scenario::new(
                    ScenarioConfig::default(),
                    pool,
                    Mix::single(sn.read_home_timeline_light),
                    Watch {
                        service: sn.post_storage,
                        conns: None,
                    },
                );
                let mut null = sora_core::NullController;
                let _ = scenario.run(&mut sn.world, &mut null);
                sn.world
            }
        }
    }

    /// Monitored-service goodput (completions within the case threshold per
    /// second, summed over replicas) over `[from, to)` — the objective the
    /// SCG estimate optimises, used by the validation sweeps.
    pub fn monitored_goodput(self, world: &World, from: SimTime, to: SimTime) -> f64 {
        let svc = self.monitored_service();
        let mut n = 0u64;
        for pod in world.ready_replicas(svc) {
            if let Some(log) = world.completions_of(pod) {
                n += log.goodput_in(from, to, self.threshold());
            }
        }
        n as f64 / (to - from).as_secs_f64()
    }

    /// The SCG scatter of the monitored service over `[from, to)` at the
    /// given sampling interval.
    pub fn scatter(
        self,
        world: &World,
        from: SimTime,
        to: SimTime,
        interval: SimDuration,
    ) -> Vec<telemetry::ScatterPoint> {
        let svc = self.monitored_service();
        let mut pts = Vec::new();
        for pod in world.ready_replicas(svc) {
            if let (Some(conc), Some(comp)) = (world.concurrency_of(pod), world.completions_of(pod))
            {
                pts.extend(telemetry::build_scatter(
                    conc,
                    comp,
                    from,
                    to,
                    interval,
                    self.threshold(),
                ));
            }
        }
        pts
    }
}
