//! Aligned console tables and JSON result archiving.

use serde::Serialize;
use std::fmt::Display;
use std::path::PathBuf;

/// A simple aligned console table.
///
/// # Example
///
/// ```
/// use sora_bench::Table;
/// let mut t = Table::new(vec!["trace", "p99 [ms]"]);
/// t.row(vec!["Big Spike".into(), "321".into()]);
/// let text = t.render();
/// assert!(text.contains("Big Spike"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<impl Into<String>>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:>w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a titled table to stdout.
pub fn print_table(title: impl Display, table: &Table) {
    println!("\n== {title} ==");
    print!("{}", table.render());
}

/// Saves a JSON result under `results/<name>.json` in the workspace root,
/// so figures can be re-plotted without re-running the experiment.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Saves a JSON result together with a machine-readable perf record as
/// `{"data": <value>, "perf": {"total_wall_secs": …, "jobs": …, "runs": …}}`
/// under `results/<name>.json`, so perf regressions in the harness itself
/// are visible across commits.
pub fn save_json_with_perf<T: Serialize>(name: &str, value: &T, perf: &crate::sweep::PerfMetrics) {
    let mut wrapped = serde_json::Map::new();
    wrapped.insert("data".to_string(), serde_json::to_value(value));
    wrapped.insert("perf".to_string(), serde_json::to_value(perf));
    save_json(name, &serde_json::Value::Object(wrapped));
}

fn results_dir() -> PathBuf {
    // The workspace root is two levels above this crate's manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows render to the same width.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn save_json_writes_into_results() {
        save_json("self_test", &serde_json::json!({"ok": true}));
        let path = super::results_dir().join("self_test.json");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("ok"));
    }
}
