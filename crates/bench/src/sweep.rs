//! Parallel, deterministic fan-out of independent scenario runs.
//!
//! Every experiment binary in this crate regenerates its table/figure from
//! a set of *independent* simulation runs: each run owns its `World`,
//! seeded from its own root seed (DESIGN §3), so runs share no mutable
//! state and are bit-for-bit reproducible in isolation. That is exactly
//! the property that makes fanning them out across threads safe: the
//! [`Sweep`] engine executes submitted closures on a small worker pool and
//! collects results **by input index**, so the output order — and therefore
//! every table row and JSON archive derived from it — is byte-identical to
//! the serial execution regardless of which run finishes first.
//!
//! Worker count comes from (in priority order) the `SORA_BENCH_JOBS`
//! environment variable, a `--jobs N` command-line flag, or the machine's
//! available parallelism. With one job the engine degrades to plain
//! in-thread execution — no threads are spawned at all.
//!
//! Panics inside a run are caught, reported with the failing run's label,
//! and re-raised on the submitting thread once all workers have stopped.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

/// One labelled unit of work for a [`Sweep`].
pub struct Job<'env, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'env>,
}

/// Wraps a closure with a human-readable label (used in progress output and
/// panic reports; typically the scenario name plus its seed).
pub fn job<'env, T>(
    label: impl Into<String>,
    run: impl FnOnce() -> T + Send + 'env,
) -> Job<'env, T> {
    Job {
        label: label.into(),
        run: Box::new(run),
    }
}

/// Machine-readable performance record of a sweep (or a whole binary),
/// archived into `results/*.json` to track the repo's perf trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct PerfMetrics {
    /// Total wall-clock time in seconds.
    pub total_wall_secs: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Number of runs executed.
    pub runs: usize,
}

impl PerfMetrics {
    /// Sums run counts and wall-clock across phases, keeping the widest
    /// worker count (for binaries that execute several sweeps).
    pub fn merged(parts: &[PerfMetrics]) -> PerfMetrics {
        PerfMetrics {
            total_wall_secs: parts.iter().map(|p| p.total_wall_secs).sum(),
            jobs: parts.iter().map(|p| p.jobs).max().unwrap_or(1),
            runs: parts.iter().map(|p| p.runs).sum(),
        }
    }
}

/// Per-run timing, index-aligned with the sweep's results.
#[derive(Debug, Clone, Serialize)]
pub struct RunStat {
    /// The job's label.
    pub label: String,
    /// The run's wall-clock in seconds.
    pub wall_secs: f64,
}

/// One labelled unit of work for [`Sweep::run_ctx`]: like [`Job`], but the
/// closure borrows its worker's reusable context — e.g. a farm worker
/// process handle that should serve many runs without respawning.
pub struct CtxJob<'env, C, T> {
    label: String,
    run: Box<dyn FnOnce(&mut C) -> T + Send + 'env>,
}

/// Wraps a context-taking closure with a human-readable label (the
/// context-aware sibling of [`job`]).
pub fn ctx_job<'env, C, T>(
    label: impl Into<String>,
    run: impl FnOnce(&mut C) -> T + Send + 'env,
) -> CtxJob<'env, C, T> {
    CtxJob {
        label: label.into(),
        run: Box::new(run),
    }
}

/// Results of a [`Sweep::run_ctx`] fan-out, in submission order. A `None`
/// slot means the job never executed: the stop flag was raised first, or
/// another job's panic is being re-raised.
pub struct CtxOutcome<T> {
    /// One slot per job, ordered by input index; executed jobs carry their
    /// value and timing.
    pub results: Vec<Option<(T, RunStat)>>,
    /// The perf record (`runs` counts only executed jobs).
    pub perf: PerfMetrics,
}

/// Results of a sweep, in submission order.
pub struct SweepOutcome<T> {
    /// One result per job, ordered by input index (not completion order).
    pub results: Vec<T>,
    /// Per-run wall-clock, index-aligned with `results`.
    pub run_stats: Vec<RunStat>,
    /// The perf record: total wall-clock, worker count, run count.
    pub perf: PerfMetrics,
}

/// A worker pool fanning independent runs across threads.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    jobs: usize,
}

impl Sweep {
    /// A sweep with an explicit worker count (min 1).
    pub fn with_jobs(jobs: usize) -> Sweep {
        Sweep { jobs: jobs.max(1) }
    }

    /// Resolves the worker count from `SORA_BENCH_JOBS`, then `--jobs N`
    /// (or `--jobs=N`) on the command line, then available parallelism.
    pub fn from_env() -> Sweep {
        if let Ok(v) = std::env::var("SORA_BENCH_JOBS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return Sweep::with_jobs(n);
            }
            eprintln!("warning: ignoring unparsable SORA_BENCH_JOBS={v}");
        }
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            if a == "--jobs" {
                if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    return Sweep::with_jobs(n);
                }
            } else if let Some(v) = a.strip_prefix("--jobs=") {
                if let Ok(n) = v.parse() {
                    return Sweep::with_jobs(n);
                }
            }
        }
        Sweep::with_jobs(
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1),
        )
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every job, returning results in submission order.
    ///
    /// With `jobs == 1` (or a single job) everything executes inline on the
    /// calling thread. Otherwise jobs are pulled off a shared counter by
    /// `min(jobs, len)` scoped worker threads; each result lands in the
    /// slot of its input index.
    ///
    /// # Panics
    ///
    /// If a run panics, the panic is re-raised here (after all workers have
    /// drained) with the failing run's label printed to stderr; the first
    /// failing input index wins when several runs panic.
    pub fn run<'env, T: Send>(&self, jobs: Vec<Job<'env, T>>) -> SweepOutcome<T> {
        let ctx_jobs = jobs
            .into_iter()
            .map(|j| {
                let run = j.run;
                ctx_job(j.label, move |_: &mut ()| run())
            })
            .collect();
        let outcome = self.run_ctx(|_| (), None, ctx_jobs);
        let mut results = Vec::with_capacity(outcome.results.len());
        let mut run_stats = Vec::with_capacity(outcome.results.len());
        for slot in outcome.results {
            let (value, stat) = slot.expect("no stop flag: every job executes");
            results.push(value);
            run_stats.push(stat);
        }
        SweepOutcome {
            results,
            run_stats,
            perf: outcome.perf,
        }
    }

    /// The general fan-out engine behind [`Sweep::run`], with two extra
    /// capabilities the sweep *farm* needs:
    ///
    /// * **per-worker contexts** — `make_ctx(worker_index)` runs once per
    ///   worker (on that worker's thread) and the context is lent to every
    ///   job the worker executes, so expensive resources (a spawned worker
    ///   process, a connection) are reused across runs;
    /// * **cooperative interruption** — when `stop` is raised, workers
    ///   finish their current job and claim no more; unexecuted jobs leave
    ///   `None` slots, which is what lets an interrupted farm flush a
    ///   partial, resumable result set.
    ///
    /// Results land by input index, exactly like [`Sweep::run`]. With one
    /// worker everything executes inline on the calling thread (panics
    /// propagate raw); on the pool, a panicking job is labelled and
    /// re-raised after all workers drain, and the remaining slots read
    /// `None`.
    pub fn run_ctx<'env, C, T: Send>(
        &self,
        make_ctx: impl Fn(usize) -> C + Sync,
        stop: Option<&AtomicBool>,
        jobs: Vec<CtxJob<'env, C, T>>,
    ) -> CtxOutcome<T> {
        let started = Instant::now();
        let n = jobs.len();
        let workers = self.jobs.min(n.max(1));
        let stopped = |stop: Option<&AtomicBool>| stop.is_some_and(|s| s.load(Ordering::SeqCst));

        if workers <= 1 {
            let mut ctx = make_ctx(0);
            let mut results = Vec::with_capacity(n);
            for job in jobs {
                if stopped(stop) {
                    results.push(None);
                    continue;
                }
                let t0 = Instant::now();
                let value = (job.run)(&mut ctx);
                let wall_secs = t0.elapsed().as_secs_f64();
                eprintln!("[sweep] {}: {:.2}s", job.label, wall_secs);
                results.push(Some((
                    value,
                    RunStat {
                        label: job.label,
                        wall_secs,
                    },
                )));
            }
            let runs = results.iter().filter(|r| r.is_some()).count();
            return CtxOutcome {
                results,
                perf: PerfMetrics {
                    total_wall_secs: started.elapsed().as_secs_f64(),
                    jobs: 1,
                    runs,
                },
            };
        }

        type Slot<T> = Option<Result<(T, RunStat), (String, Box<dyn std::any::Any + Send>)>>;
        let slots: Vec<Mutex<Slot<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let tasks: Vec<Mutex<Option<CtxJob<'env, C, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let (make_ctx, slots, tasks, next) = (&make_ctx, &slots, &tasks, &next);
                scope.spawn(move || {
                    let mut ctx = make_ctx(w);
                    loop {
                        if stopped(stop) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = tasks[i]
                            .lock()
                            .expect("task slot poisoned")
                            .take()
                            .expect("each task is taken exactly once");
                        let label = job.label;
                        let run = job.run;
                        let t0 = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| run(&mut ctx)));
                        let wall_secs = t0.elapsed().as_secs_f64();
                        let slot_value = match outcome {
                            Ok(value) => {
                                eprintln!("[sweep] {label}: {wall_secs:.2}s");
                                Ok((value, RunStat { label, wall_secs }))
                            }
                            Err(payload) => Err((label, payload)),
                        };
                        *slots[i].lock().expect("result slot poisoned") = Some(slot_value);
                    }
                });
            }
        });

        let mut results = Vec::with_capacity(n);
        let mut first_panic: Option<(String, Box<dyn std::any::Any + Send>)> = None;
        for slot in slots {
            match slot.into_inner().expect("result slot poisoned") {
                Some(Ok(pair)) => results.push(Some(pair)),
                Some(Err(labelled)) => {
                    if first_panic.is_none() {
                        first_panic = Some(labelled);
                    }
                    results.push(None);
                }
                None => results.push(None),
            }
        }
        if let Some((label, payload)) = first_panic {
            eprintln!("[sweep] run `{label}` panicked; re-raising");
            resume_unwind(payload);
        }
        let runs = results.iter().filter(|r| r.is_some()).count();
        let total_wall_secs = started.elapsed().as_secs_f64();
        eprintln!("[sweep] {runs} runs on {workers} workers in {total_wall_secs:.2}s");
        CtxOutcome {
            results,
            perf: PerfMetrics {
                total_wall_secs,
                jobs: workers,
                runs,
            },
        }
    }
}

/// Tracks a whole binary's wall-clock for its perf record.
pub struct PerfTimer {
    started: Instant,
}

impl PerfTimer {
    /// Starts timing.
    #[allow(clippy::new_without_default)]
    pub fn new() -> PerfTimer {
        PerfTimer {
            started: Instant::now(),
        }
    }

    /// Finishes into a [`PerfMetrics`] with the given jobs/runs counts.
    pub fn finish(self, jobs: usize, runs: usize) -> PerfMetrics {
        PerfMetrics {
            total_wall_secs: self.started.elapsed().as_secs_f64(),
            jobs,
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(sweep: &Sweep, n: usize) -> Vec<usize> {
        let jobs = (0..n)
            .map(|i| job(format!("sq-{i}"), move || i * i))
            .collect();
        sweep.run(jobs).results
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let parallel = squares(&Sweep::with_jobs(4), 32);
        assert_eq!(parallel, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_output_matches_serial_output() {
        // Unequal run times force out-of-order completion.
        let make_jobs = || {
            (0..16)
                .map(|i| {
                    job(format!("run-{i}"), move || {
                        if i % 3 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        (i, i * 7)
                    })
                })
                .collect::<Vec<_>>()
        };
        let serial = Sweep::with_jobs(1).run(make_jobs());
        let parallel = Sweep::with_jobs(8).run(make_jobs());
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.perf.runs, parallel.perf.runs);
        assert_eq!(parallel.perf.jobs, 8);
        assert_eq!(serial.perf.jobs, 1);
    }

    #[test]
    fn jobs_one_runs_inline() {
        let main_thread = std::thread::current().id();
        let outcome =
            Sweep::with_jobs(1).run(vec![job("inline", move || std::thread::current().id())]);
        assert_eq!(outcome.results, vec![main_thread]);
    }

    #[test]
    fn panics_propagate_with_first_failing_index() {
        let result = std::panic::catch_unwind(|| {
            Sweep::with_jobs(4).run(vec![
                job("fine", || 1),
                job("boom-seed-42", || panic!("exploded at seed 42")),
                job("also-fine", || 3),
            ])
        });
        let payload = match result {
            Ok(_) => panic!("sweep must re-raise the panic"),
            Err(payload) => payload,
        };
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("exploded at seed 42"), "got: {msg}");
    }

    #[test]
    fn run_stats_align_with_results() {
        let outcome =
            Sweep::with_jobs(2).run((0..6).map(|i| job(format!("j{i}"), move || i)).collect());
        let labels: Vec<&str> = outcome.run_stats.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["j0", "j1", "j2", "j3", "j4", "j5"]);
        assert!(outcome.run_stats.iter().all(|s| s.wall_secs >= 0.0));
    }

    #[test]
    fn merged_perf_accumulates() {
        let a = PerfMetrics {
            total_wall_secs: 1.0,
            jobs: 4,
            runs: 10,
        };
        let b = PerfMetrics {
            total_wall_secs: 0.5,
            jobs: 2,
            runs: 3,
        };
        let m = PerfMetrics::merged(&[a, b]);
        assert_eq!(m.runs, 13);
        assert_eq!(m.jobs, 4);
        assert!((m.total_wall_secs - 1.5).abs() < 1e-9);
    }

    #[test]
    fn run_ctx_builds_one_context_per_worker_and_reuses_it() {
        let created = AtomicUsize::new(0);
        let outcome = Sweep::with_jobs(2).run_ctx(
            |w| {
                created.fetch_add(1, Ordering::SeqCst);
                w
            },
            None,
            (0..8)
                .map(|i| ctx_job(format!("c{i}"), move |w: &mut usize| (*w, i)))
                .collect(),
        );
        assert_eq!(created.load(Ordering::SeqCst), 2, "one context per worker");
        let values: Vec<usize> = outcome
            .results
            .iter()
            .map(|r| r.as_ref().expect("no stop flag").0 .1)
            .collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
        assert!(outcome.results.iter().all(|r| r.as_ref().unwrap().0 .0 < 2));
        assert_eq!(outcome.perf.runs, 8);
    }

    #[test]
    fn stop_flag_leaves_unexecuted_slots_empty() {
        let stop = AtomicBool::new(false);
        let stop_ref = &stop;
        let outcome = Sweep::with_jobs(1).run_ctx(
            |_| (),
            Some(&stop),
            (0..6)
                .map(|i| {
                    ctx_job(format!("s{i}"), move |_: &mut ()| {
                        if i == 2 {
                            stop_ref.store(true, Ordering::SeqCst);
                        }
                        i
                    })
                })
                .collect(),
        );
        let executed: Vec<Option<usize>> = outcome
            .results
            .iter()
            .map(|r| r.as_ref().map(|(v, _)| *v))
            .collect();
        assert_eq!(
            executed,
            vec![Some(0), Some(1), Some(2), None, None, None],
            "inline workers stop claiming jobs once the flag is raised"
        );
        assert_eq!(outcome.perf.runs, 3);
    }

    #[test]
    fn borrows_from_environment_work() {
        // Scoped threads: jobs may borrow locals without 'static.
        let data = [10, 20, 30];
        let outcome = Sweep::with_jobs(2).run(
            data.iter()
                .map(|&x| job(format!("x{x}"), move || x + 1))
                .collect(),
        );
        assert_eq!(outcome.results, vec![11, 21, 31]);
    }
}
