//! Fault resilience — Sora vs HPA-only under a canned fault schedule.
//!
//! The Cart path runs the Steep Tri Phase trace while a deterministic
//! [`FaultSchedule`] injects the three fault families: a Cart replica crash
//! (restarted after a delay), a node CPU-pressure window shrinking every
//! hosted replica's deliverable CPU, and a telemetry blackout overlapping
//! the pressure window. Clients retry dropped requests under a bounded,
//! budgeted backoff policy, so retry storms show up in the report instead
//! of hiding as load.
//!
//! Three controller stacks run the identical schedule:
//!
//! * `hpa-only` — replica scaling, static pools;
//! * `hpa+sora` — Sora with the degradation guard (freeze actuation while
//!   the critical service's telemetry is stale);
//! * `hpa+sora-nodegrade` — the ablation: Sora keeps estimating and
//!   exploring from the poisoned scatter window during the blackout.
//!
//! The blackout is the trap for the ablation: localisation still succeeds
//! on pre-outage traces, node pressure makes CPU utilisation look low while
//! the pool is genuinely saturated, and the scatter window mixes pre-fault
//! points with in-blackout `q > 0, rate = 0` samples — so the guard-less
//! controller explores the pool upward into an oversubscribed, pressured
//! CPU. The verdict compares SLO violations (missed threshold + drops)
//! with the guard on vs off.
//!
//! Flags: `--quick` (3-minute runs), `--smoke` (90 s runs plus a canonical
//! JSON dump on stdout for determinism diffs), `--jobs N` (sweep
//! parallelism; the output is byte-identical for any value).

use apps::{RunResult, Scenario, ScenarioConfig, SockShop, SockShopParams, Watch};
use autoscalers::{HpaConfig, HpaController};
use microsim::{BlackoutMode, FaultSchedule, World, WorldConfig};
use scg::LocalizeConfig;
use serde::Serialize;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_bench::{job, print_table, save_json_with_perf, scenarios::THINK_MS, Sweep, Table};
use sora_core::{
    Controller, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController,
};
use telemetry::ServiceId;
use workload::{Mix, RateCurve, RetryPolicy, TraceShape, UserPool};

/// Sock Shop service-id layout (fixed by construction order).
const CART: ServiceId = ServiceId(1);

/// End-to-end SLA for goodput and SLO-violation accounting.
const SLA: SimDuration = SimDuration::from_millis(400);

/// The canned schedule, scaled per mode.
#[derive(Debug, Clone, Copy)]
struct FaultSetup {
    secs: u64,
    max_users: f64,
    crash_at: u64,
    restart_secs: u64,
    pressure_at: u64,
    pressure_secs: u64,
    pressure_factor: f64,
    blackout_at: u64,
    blackout_secs: u64,
    staleness_secs: u64,
    seed: u64,
}

fn setup() -> FaultSetup {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        FaultSetup {
            secs: 90,
            max_users: 800.0,
            crash_at: 20,
            restart_secs: 10,
            pressure_at: 40,
            pressure_secs: 30,
            pressure_factor: 0.5,
            blackout_at: 40,
            blackout_secs: 25,
            staleness_secs: 20,
            seed: 42,
        }
    } else if sora_bench::quick_mode() {
        FaultSetup {
            secs: 180,
            max_users: 3_500.0,
            crash_at: 40,
            restart_secs: 15,
            pressure_at: 80,
            pressure_secs: 60,
            pressure_factor: 0.35,
            blackout_at: 80,
            blackout_secs: 45,
            staleness_secs: 20,
            seed: 42,
        }
    } else {
        FaultSetup {
            secs: 720,
            max_users: 3_500.0,
            crash_at: 120,
            restart_secs: 30,
            pressure_at: 300,
            pressure_secs: 150,
            pressure_factor: 0.35,
            blackout_at: 300,
            blackout_secs: 120,
            staleness_secs: 30,
            seed: 42,
        }
    }
}

fn schedule(s: FaultSetup, world: &World) -> FaultSchedule {
    // All Sock Shop pods land on the cluster's single default node; read
    // the Cart's placement so the pressure window targets the real host.
    let node = world
        .node_of(world.ready_replicas(CART)[0])
        .expect("cart replica placed");
    FaultSchedule::new()
        .crash(
            SimTime::from_secs(s.crash_at),
            CART,
            Some(SimDuration::from_secs(s.restart_secs)),
        )
        .cpu_pressure(
            SimTime::from_secs(s.pressure_at),
            node,
            s.pressure_factor,
            SimDuration::from_secs(s.pressure_secs),
        )
        .telemetry_blackout(
            SimTime::from_secs(s.blackout_at),
            BlackoutMode::Drop,
            SimDuration::from_secs(s.blackout_secs),
        )
}

fn run_variant(s: FaultSetup, controller: &mut dyn Controller) -> (RunResult, World) {
    let mut shop = SockShop::build_with_config(
        SockShopParams::default(),
        WorldConfig {
            trace_sample_every: 10,
            ..Default::default()
        },
        SimRng::seed_from(s.seed),
    );
    let faults = schedule(s, &shop.world);
    shop.world
        .install_faults(faults)
        .expect("valid fault schedule");
    let curve = RateCurve::new(
        TraceShape::SteepTriPhase,
        s.max_users,
        SimDuration::from_secs(s.secs),
    );
    let pool = UserPool::new(
        curve,
        Dist::exponential_ms(THINK_MS),
        SimRng::seed_from(s.seed ^ 0x9e37),
    )
    .with_retry(RetryPolicy::default());
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SLA,
            ..Default::default()
        },
        pool,
        Mix::single(shop.get_cart),
        Watch {
            service: shop.cart,
            conns: None,
        },
    );
    let result = scenario.run(&mut shop.world, controller);
    // Crash/pressure/blackout paths must also leave the ledgers clean.
    #[cfg(feature = "audit")]
    assert_eq!(
        shop.world.audit().total(),
        0,
        "audit violations under faults: {}",
        shop.world.audit().summary()
    );
    (result, shop.world)
}

fn sora_over_hpa(s: FaultSetup, degradation: bool) -> SoraController<HpaController> {
    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: CART },
        ResourceBounds { min: 5, max: 200 },
    );
    SoraController::sora(
        SoraConfig {
            sla: SLA,
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            degradation,
            staleness_bound: SimDuration::from_secs(s.staleness_secs),
            ..Default::default()
        },
        registry,
        HpaController::new(CART, HpaConfig::default()),
    )
}

/// One controller stack's results under the canned schedule.
#[derive(Debug, Clone, Serialize)]
struct VariantReport {
    label: String,
    completed: u64,
    dropped: u64,
    drop_breakdown: microsim::DropBreakdown,
    retry: workload::RetryStats,
    goodput_rps: f64,
    /// Requests that missed the SLA plus requests dropped outright.
    slo_violations: u64,
    p95_ms: f64,
    p99_ms: f64,
    /// Control periods the degradation guard skipped (0 without Sora or
    /// with the guard disabled).
    frozen_periods: u64,
    final_thread_limit: usize,
    peak_thread_limit: usize,
    fault_log: Vec<(f64, String)>,
}

fn report(label: &str, result: &RunResult, world: &World, frozen_periods: u64) -> VariantReport {
    let client = world.client();
    let missed = client.total() - client.goodput_count(SLA);
    VariantReport {
        label: label.to_string(),
        completed: result.summary.completed,
        dropped: result.summary.dropped,
        drop_breakdown: result.summary.drop_breakdown,
        retry: result.retry,
        goodput_rps: result.summary.goodput_rps,
        slo_violations: missed + result.summary.dropped,
        p95_ms: result.summary.p95_ms,
        p99_ms: result.summary.p99_ms,
        frozen_periods,
        final_thread_limit: world.thread_limit(CART),
        peak_thread_limit: result
            .timeline
            .iter()
            .map(|r| r.thread_limit)
            .max()
            .unwrap_or(0),
        fault_log: world
            .fault_log()
            .iter()
            .map(|(at, what)| (at.as_secs_f64(), what.clone()))
            .collect(),
    }
}

fn main() {
    let s = setup();
    let smoke = std::env::args().any(|a| a == "--smoke");

    let outcome = Sweep::from_env().run(vec![
        job("hpa-only", move || {
            let mut hpa = HpaController::new(CART, HpaConfig::default());
            let (result, world) = run_variant(s, &mut hpa);
            report("hpa-only", &result, &world, 0)
        }),
        job("hpa+sora", move || {
            let mut sora = sora_over_hpa(s, true);
            let (result, world) = run_variant(s, &mut sora);
            report("hpa+sora", &result, &world, sora.frozen_periods())
        }),
        job("hpa+sora-nodegrade", move || {
            let mut sora = sora_over_hpa(s, false);
            let (result, world) = run_variant(s, &mut sora);
            report("hpa+sora-nodegrade", &result, &world, sora.frozen_periods())
        }),
    ]);
    let variants = outcome.results.clone();

    let mut table = Table::new(vec![
        "variant",
        "completed",
        "goodput [req/s]",
        "SLO viol",
        "p99 [ms]",
        "dropped (ref/fail/to/exh)",
        "retries (try/quit/denied)",
        "frozen",
        "threads",
    ]);
    for v in &variants {
        let b = v.drop_breakdown;
        table.row(vec![
            v.label.clone(),
            format!("{}", v.completed),
            format!("{:.0}", v.goodput_rps),
            format!("{}", v.slo_violations),
            format!("{:.0}", v.p99_ms),
            format!(
                "{} ({}/{}/{}/{})",
                v.dropped, b.refused, b.replica_failed, b.client_timeout, b.retries_exhausted
            ),
            format!(
                "{}/{}/{}",
                v.retry.attempts, v.retry.gave_up, v.retry.budget_denied
            ),
            format!("{}", v.frozen_periods),
            format!("{}→{}", v.peak_thread_limit, v.final_thread_limit),
        ]);
    }
    print_table(
        "Fault resilience — Sora vs HPA under the canned schedule",
        &table,
    );
    println!("fault log: {:?}", variants[0].fault_log);

    let degrade = &variants[1];
    let nodegrade = &variants[2];
    println!("\n== Fault-resilience verdict ==");
    println!(
        "SLO violations: degradation-aware {} vs degradation-off {} (guard froze {} periods)",
        degrade.slo_violations, nodegrade.slo_violations, degrade.frozen_periods
    );
    let helps = degrade.slo_violations < nodegrade.slo_violations;
    println!(
        "degradation guard {}",
        if helps {
            "reduces SLO violations"
        } else {
            "did NOT reduce SLO violations"
        }
    );

    let data = serde_json::json!({
        "schedule": {
            "secs": s.secs,
            "crash_at": s.crash_at,
            "restart_secs": s.restart_secs,
            "pressure_at": s.pressure_at,
            "pressure_secs": s.pressure_secs,
            "pressure_factor": s.pressure_factor,
            "blackout_at": s.blackout_at,
            "blackout_secs": s.blackout_secs,
            "staleness_secs": s.staleness_secs,
            "sla_ms": SLA.as_millis_f64(),
            "seed": s.seed,
        },
        "variants": variants,
        "degradation_helps": helps,
    });
    if smoke {
        // The smoke check diffs stdout across --jobs settings; dump the
        // canonical data (the archive file also carries wall-clock perf,
        // which legitimately differs run to run).
        println!(
            "{}",
            serde_json::to_string_pretty(&data).expect("serialize")
        );
    }
    save_json_with_perf("fault_resilience", &data, &outcome.perf);
}
