//! Figure 9 — SCG model estimation and validation for three soft-resource
//! kinds: Cart server threads (a), Catalogue DB connections (b), and
//! Post Storage request connections (c).
//!
//! Left column (estimation): a run with a generous allocation feeds the SCG
//! model, which recommends an optimal concurrency under a tight threshold.
//! Right column (validation): sweeps of adjacent allocations under the same
//! workload confirm the recommendation achieves (close to) the highest
//! goodput of the monitored service.
//!
//! Two [`Sweep`] phases: the three estimation runs fan out first, then every
//! validation run of every case fans out in one flat batch; output is
//! assembled per case from index-ordered results afterwards, so it is
//! byte-identical at any job count.

use sim_core::{SimDuration, SimTime};
use sora_bench::{job, print_table, save_json_with_perf, MonitoredCase, PerfMetrics, Sweep, Table};

fn neighbourhood(est: usize) -> Vec<usize> {
    let mut v = vec![
        (est / 2).max(1),
        (est * 3 / 4).max(1),
        est,
        est * 3 / 2,
        est * 3,
    ];
    v.sort_unstable();
    v.dedup();
    v
}

fn main() {
    let quick = sora_bench::quick_mode();
    let est_secs = if quick { 120 } else { 240 };
    let val_secs = if quick { 60 } else { 180 };
    let mut json = serde_json::Map::new();
    let sweep = Sweep::from_env();
    let cases = [
        ("(a) cart threads", MonitoredCase::CartThreads),
        ("(b) catalogue db conns", MonitoredCase::CatalogueConns),
        ("(c) post storage conns", MonitoredCase::PostStorageConns),
    ];

    // Phase 1 — estimation from a generous-allocation run, per case.
    let est_jobs = cases
        .into_iter()
        .map(|(label, case)| {
            job(format!("estimate/{case:?}"), move || {
                let model = scg::ScgModel::default();
                let world = case.run(case.generous_allocation(), est_secs, 29);
                let pts = case.scatter(
                    &world,
                    SimTime::from_secs(est_secs / 4),
                    SimTime::from_secs(est_secs),
                    SimDuration::from_millis(100),
                );
                let n_pts = pts.len();
                (label, case, model.estimate(&pts), n_pts)
            })
        })
        .collect();
    let est_outcome = sweep.run(est_jobs);

    // Phase 2 — validation runs around each estimate, one flat batch.
    let val_jobs = est_outcome
        .results
        .iter()
        .filter_map(|(_, case, est, _)| est.as_ref().map(|e| (*case, e.optimal)))
        .flat_map(|(case, optimal)| {
            neighbourhood(optimal).into_iter().map(move |alloc| {
                job(format!("validate/{case:?}/{alloc}"), move || {
                    let w = case.run(alloc, val_secs, 31);
                    let warmup = SimTime::from_secs(val_secs / 3);
                    let end = SimTime::from_secs(val_secs);
                    (alloc, case.monitored_goodput(&w, warmup, end))
                })
            })
        })
        .collect();
    let val_outcome = sweep.run(val_jobs);

    let mut validations = val_outcome.results.iter();
    for (label, case, est, n_pts) in &est_outcome.results {
        let Some(est) = est else {
            println!("\nFig. 9{label}: no knee detected ({n_pts} scatter points)");
            continue;
        };
        println!(
            "\nFig. 9{label}: SCG estimate = {} @ {} threshold (degree {}, {} bins)",
            est.optimal,
            case.threshold(),
            est.degree,
            est.bins
        );
        let sweep_res: Vec<(usize, f64)> = validations
            .by_ref()
            .take(neighbourhood(est.optimal).len())
            .copied()
            .collect();
        let mut table = Table::new(vec!["allocation", "monitored goodput [req/s]"]);
        for &(alloc, gp) in &sweep_res {
            let marker = if alloc == est.optimal {
                "  <= SCG estimate"
            } else {
                ""
            };
            table.row(vec![format!("{alloc}{marker}"), format!("{gp:.0}")]);
        }
        print_table(format!("Fig. 9{label} — validation"), &table);
        let best_gp = sweep_res.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
        let est_gp = sweep_res
            .iter()
            .find(|&&(a, _)| a == est.optimal)
            .map_or(0.0, |&(_, g)| g);
        let ok = est_gp >= 0.95 * best_gp;
        println!(
            "  estimate achieves {:.1}% of the sweep's best goodput — {}",
            100.0 * est_gp / best_gp.max(1e-9),
            if ok {
                "validated ✓"
            } else {
                "NOT validated ✗"
            }
        );
        json.insert(
            label.to_string(),
            serde_json::json!({
                "estimate": est.optimal,
                "sweep": sweep_res,
                "validated": ok,
            }),
        );
    }
    save_json_with_perf(
        "fig09_model_validation",
        &serde_json::Value::Object(json),
        &PerfMetrics::merged(&[est_outcome.perf, val_outcome.perf]),
    );
}
