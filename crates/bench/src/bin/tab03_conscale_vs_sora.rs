//! Table 3 — average goodput, ConScale vs Sora, six traces × two SLA
//! thresholds (250 ms and 500 ms), both over Kubernetes VPA.
//!
//! The 24 runs (two SLAs × six traces × two adapters) fan out across the
//! [`Sweep`] harness; rows are assembled from index-ordered results so the
//! tables are byte-identical at any job count.

use autoscalers::{VpaConfig, VpaController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::{SimDuration, SimTime};
use sora_bench::{
    cart_run, job, print_table, save_json_with_perf, trace_secs, CartSetup, Sweep, Table,
};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use telemetry::ServiceId;
use workload::TraceShape;

const CART: ServiceId = ServiceId(1);

fn vpa() -> VpaController {
    VpaController::new(
        CART,
        VpaConfig {
            min_limit: Millicores::from_cores(1),
            max_limit: Millicores::from_cores(4),
            ..Default::default()
        },
    )
}

fn run(shape: TraceShape, sla_ms: u64, latency_aware: bool, secs: u64) -> (f64, f64) {
    let setup = CartSetup {
        shape,
        secs,
        report_rtt: SimDuration::from_millis(sla_ms),
        ..Default::default()
    };
    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: CART },
        ResourceBounds { min: 5, max: 200 },
    );
    let config = SoraConfig {
        sla: SimDuration::from_millis(sla_ms),
        localize: LocalizeConfig {
            min_on_path: 30,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut ctl = if latency_aware {
        SoraController::sora(config, registry, vpa())
    } else {
        SoraController::conscale(config, registry, vpa())
    };
    let (res, world) = cart_run(&setup, &mut ctl);
    let goodput = world.client().goodput_rate(
        SimTime::ZERO,
        SimTime::from_secs(secs),
        SimDuration::from_millis(sla_ms),
    );
    (goodput, res.summary.p99_ms)
}

fn main() {
    let secs = trace_secs();
    let mut jobs = Vec::new();
    for sla_ms in [250u64, 500] {
        for shape in TraceShape::ALL {
            for latency_aware in [false, true] {
                let kind = if latency_aware { "sora" } else { "conscale" };
                jobs.push(job(format!("{kind}/{shape}@{sla_ms}ms"), move || {
                    run(shape, sla_ms, latency_aware, secs)
                }));
            }
        }
    }
    let outcome = Sweep::from_env().run(jobs);

    let mut results = outcome.results.iter();
    let mut rows = Vec::new();
    for sla_ms in [250u64, 500] {
        let mut table = Table::new(vec![
            "trace",
            "ConScale goodput [req/s]",
            "Sora goodput [req/s]",
            "Sora/ConScale",
        ]);
        for shape in TraceShape::ALL {
            let &(con_gp, con_p99) = results.next().expect("conscale result");
            let &(sora_gp, sora_p99) = results.next().expect("sora result");
            table.row(vec![
                shape.to_string(),
                format!("{con_gp:.0}"),
                format!("{sora_gp:.0}"),
                format!("{:.2}x", sora_gp / con_gp.max(1.0)),
            ]);
            rows.push(serde_json::json!({
                "sla_ms": sla_ms,
                "trace": shape.name(),
                "conscale_goodput": con_gp,
                "sora_goodput": sora_gp,
                "conscale_p99_ms": con_p99,
                "sora_p99_ms": sora_p99,
            }));
        }
        print_table(format!("Table 3 — SLA threshold {sla_ms} ms"), &table);
    }
    println!("paper's claim: Sora outperforms ConScale at both SLAs (≈1.1–1.5x goodput)");
    save_json_with_perf(
        "tab03_conscale_vs_sora",
        &serde_json::json!(rows),
        &outcome.perf,
    );
}
