//! Figure 11 — ConScale vs Sora under the "Large Variation" trace, both on
//! top of a threshold-based vertical scaler (Kubernetes VPA).
//!
//! ConScale's SCT model is throughput-centric: it keeps allocating threads
//! while raw throughput improves, over-allocating past the goodput knee;
//! Sora's deadline-aware SCG model stops at the knee (the paper's 40 vs 30
//! threads after the Cart scales to 4 cores).

use autoscalers::{VpaConfig, VpaController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::SimDuration;
use sora_bench::{
    cart_run, job, print_table, save_json_with_perf, trace_secs, CartSetup, Sweep, Table,
};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use telemetry::ServiceId;
use workload::TraceShape;

const CART: ServiceId = ServiceId(1);

fn vpa() -> VpaController {
    VpaController::new(
        CART,
        VpaConfig {
            min_limit: Millicores::from_cores(1),
            max_limit: Millicores::from_cores(4),
            ..Default::default()
        },
    )
}

fn registry() -> ResourceRegistry {
    ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: CART },
        ResourceBounds { min: 5, max: 200 },
    )
}

fn config() -> SoraConfig {
    SoraConfig {
        sla: SimDuration::from_millis(400),
        localize: LocalizeConfig {
            min_on_path: 30,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let setup = CartSetup {
        shape: TraceShape::LargeVariation,
        secs: trace_secs(),
        ..Default::default()
    };

    let outcome = Sweep::from_env().run(vec![
        job("conscale", move || {
            let mut conscale = SoraController::conscale(config(), registry(), vpa());
            let res = cart_run(&setup, &mut conscale).0;
            let actions = conscale.actions().to_vec();
            (res, actions)
        }),
        job("sora", move || {
            let mut sora = SoraController::sora(config(), registry(), vpa());
            let res = cart_run(&setup, &mut sora).0;
            let actions = sora.actions().to_vec();
            (res, actions)
        }),
    ]);
    let mut results = outcome.results.into_iter();
    let (con_res, con_actions) = results.next().expect("conscale run");
    let (sora_res, sora_actions) = results.next().expect("sora run");

    let mut table = Table::new(vec!["metric", "ConScale (SCT)", "Sora (SCG)"]);
    table.row(vec![
        "p95 [ms]".into(),
        format!("{:.0}", con_res.summary.p95_ms),
        format!("{:.0}", sora_res.summary.p95_ms),
    ]);
    table.row(vec![
        "p99 [ms]".into(),
        format!("{:.0}", con_res.summary.p99_ms),
        format!("{:.0}", sora_res.summary.p99_ms),
    ]);
    table.row(vec![
        "goodput-400ms [req/s]".into(),
        format!("{:.0}", con_res.summary.goodput_rps),
        format!("{:.0}", sora_res.summary.goodput_rps),
    ]);
    let peak = |r: &apps::RunResult| r.timeline.iter().map(|x| x.thread_limit).max().unwrap_or(0);
    table.row(vec![
        "peak thread allocation".into(),
        format!("{}", peak(&con_res)),
        format!("{}", peak(&sora_res)),
    ]);
    print_table(
        "Fig. 11 — ConScale vs Sora (Large Variation, VPA base)",
        &table,
    );
    println!(
        "actions (last 5): conscale {:?} | sora {:?}",
        con_actions.iter().rev().take(5).collect::<Vec<_>>(),
        sora_actions.iter().rev().take(5).collect::<Vec<_>>()
    );
    println!("paper's claim: SCT over-allocates (40 threads) vs SCG (30); goodput Sora > ConScale");

    save_json_with_perf(
        "fig11_conscale_vs_sora",
        &serde_json::json!({
            "conscale": {
                "timeline": con_res.timeline,
                "rt": con_res.rt_timeline,
                "goodput": con_res.goodput_timeline,
                "summary": con_res.summary,
            },
            "sora": {
                "timeline": sora_res.timeline,
                "rt": sora_res.rt_timeline,
                "goodput": sora_res.goodput_timeline,
                "summary": sora_res.summary,
            },
        }),
        &outcome.perf,
    );
}
