//! Ablation — load-balancing policy vs tail latency under replica scaling.
//!
//! §5.3 of the paper attributes part of HPA's trouble to "workload imbalance
//! between existing replicas and newly-added replicas". This ablation
//! quantifies how the load-balancing policy interacts with a scale-out
//! event: a Post Storage-like service is scaled 1→4 replicas mid-run under
//! each policy, and the per-replica completion shares and tail latency are
//! compared.

use cluster::Millicores;
use microsim::{Behavior, LbPolicy, ServiceSpec, World, WorldConfig};
use sim_core::{Dist, SimRng, SimTime};
use sora_bench::{job, print_table, save_json_with_perf, Sweep, Table};
use telemetry::{RequestTypeId, ServiceId};

fn run(policy: LbPolicy, secs: u64) -> (World, ServiceId) {
    let cfg = WorldConfig {
        replica_startup: Dist::constant_ms(2_000),
        ..WorldConfig::default()
    };
    let mut w = World::new(cfg, SimRng::seed_from(3));
    let rt = RequestTypeId(0);
    let worker_id = ServiceId(1);
    let front = w.add_service(
        ServiceSpec::new("front")
            .cpu(Millicores::from_cores(4))
            .threads(512)
            .on(
                rt,
                Behavior::tier(Dist::constant_us(300), worker_id, Dist::constant_us(200)),
            ),
    );
    w.add_service(
        ServiceSpec::new("worker")
            .cpu(Millicores::from_cores(2))
            .threads(64)
            .csw(0.04)
            .lb(policy)
            .on(rt, Behavior::leaf(Dist::lognormal_ms(2.0, 0.4))),
    );
    let rt = w.add_request_type("r", front);
    for svc in [front, worker_id] {
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
    }
    // ~850 req/s: saturating for one 2-core worker, light for four.
    let mut rng = SimRng::seed_from(5);
    let mut at = 0u64;
    while at < secs * 1_000 {
        at += (rng.f64() * 1.4) as u64 + 1;
        w.inject_at(SimTime::from_millis(at), rt);
    }
    // Scale out at one third of the run.
    w.run_until(SimTime::from_secs(secs / 3));
    for _ in 0..3 {
        let _ = w.add_replica(worker_id);
    }
    w.run_until(SimTime::from_secs(secs + 30));
    (w, worker_id)
}

fn main() {
    let secs = if sora_bench::quick_mode() { 60 } else { 180 };
    let mut table = Table::new(vec![
        "policy",
        "p95 [ms]",
        "p99 [ms]",
        "replica completion shares [%]",
    ]);
    let mut json = serde_json::Map::new();
    let policies = [
        ("round-robin", LbPolicy::RoundRobin),
        ("random", LbPolicy::Random),
        ("least-outstanding", LbPolicy::LeastOutstanding),
    ];
    let outcome = Sweep::from_env().run(
        policies
            .into_iter()
            .map(|(name, policy)| job(format!("lb/{name}"), move || run(policy, secs)))
            .collect(),
    );
    for ((name, _), (w, worker)) in policies.into_iter().zip(&outcome.results) {
        let counts: Vec<u64> = w
            .ready_replicas(*worker)
            .iter()
            .map(|&id| w.completions_of(id).map_or(0, |l| l.len() as u64))
            .collect();
        let total: u64 = counts.iter().sum::<u64>().max(1);
        let shares: Vec<String> = counts
            .iter()
            .map(|&c| format!("{:.0}", 100.0 * c as f64 / total as f64))
            .collect();
        // Judge only the post-scale-out window: the pre-scale-out backlog
        // phase is policy-independent and would drown the comparison.
        let from = SimTime::from_secs(secs / 3);
        let to = SimTime::from_secs(secs + 30);
        let p95 = w
            .client()
            .percentile_in(from, to, 95.0)
            .map_or(0.0, |d| d.as_millis_f64());
        let p99 = w
            .client()
            .percentile_in(from, to, 99.0)
            .map_or(0.0, |d| d.as_millis_f64());
        table.row(vec![
            name.into(),
            format!("{p95:.0}"),
            format!("{p99:.0}"),
            shares.join(" / "),
        ]);
        json.insert(
            name.into(),
            serde_json::json!({"p95_ms": p95, "p99_ms": p99, "shares": counts}),
        );
    }
    print_table(
        "Ablation — LB policy across a 1→4 scale-out (post-scale-out tail, completion shares)",
        &table,
    );
    println!(
        "finding: with per-call balancing, the post-scale-out drain is bound by\n\
         the accumulated backlog, not the policy — all three converge. The\n\
         paper's §5.3 imbalance arises from long-lived Thrift connections\n\
         pinning load to old replicas, i.e. precisely the connection-pool\n\
         affinity Sora re-sizes; per-call balancing has no such affinity."
    );
    save_json_with_perf(
        "ablation_load_balancing",
        &serde_json::Value::Object(json),
        &outcome.perf,
    );
}
