//! Table 1 — optimal-concurrency estimation accuracy (MAPE) of the SCG
//! model under different metric sampling intervals, for Cart, Catalogue
//! and Post Storage.
//!
//! Ground truth: the best allocation found by an exhaustive sweep of the
//! monitored service's goodput (the Fig. 9 validation methodology).
//! Estimates: the SCG model applied to disjoint 60 s windows of one long
//! steady run with a generous allocation, re-sampled at each interval.
//!
//! All runs are independent, so the three ground-truth sweeps (3 × 10
//! allocations) and the three long estimation runs each fan out across the
//! [`Sweep`] harness; results are collected by input index, keeping the
//! output byte-identical at any job count.

use sim_core::{SimDuration, SimTime};
use sora_bench::{job, print_table, save_json_with_perf, MonitoredCase, PerfMetrics, Sweep, Table};

const INTERVALS_MS: [u64; 6] = [10, 20, 50, 100, 200, 500];
const TRUTH_ALLOCS: [usize; 10] = [2, 3, 4, 5, 6, 8, 10, 14, 20, 30];
const CASES: [MonitoredCase; 3] = [
    MonitoredCase::CartThreads,
    MonitoredCase::CatalogueConns,
    MonitoredCase::PostStorageConns,
];

struct CaseResult {
    truth: usize,
    /// Per interval: the per-window estimates (None = no knee).
    estimates: Vec<(u64, Vec<Option<usize>>)>,
}

/// One long generous run, re-analysed per window × interval.
fn estimate(case: MonitoredCase, run_secs: u64) -> Vec<(u64, Vec<Option<usize>>)> {
    let world = case.run(case.generous_allocation(), run_secs, 63);
    let model = scg::ScgModel::default();
    let window = 60u64;
    let windows: Vec<(SimTime, SimTime)> = (0..run_secs / window)
        .map(|i| {
            (
                SimTime::from_secs(i * window),
                SimTime::from_secs((i + 1) * window),
            )
        })
        .collect();
    INTERVALS_MS
        .iter()
        .map(|&ms| {
            let per_window = windows
                .iter()
                .map(|&(from, to)| {
                    let pts = case.scatter(&world, from, to, SimDuration::from_millis(ms));
                    model.estimate(&pts).map(|e| e.optimal)
                })
                .collect();
            (ms, per_window)
        })
        .collect()
}

fn mape(truth: usize, ests: &[Option<usize>]) -> Option<(f64, usize)> {
    let xs: Vec<f64> = ests.iter().flatten().map(|&e| e as f64).collect();
    if xs.is_empty() || truth == 0 {
        return None;
    }
    let t = truth as f64;
    let m = 100.0 * xs.iter().map(|x| ((x - t) / t).abs()).sum::<f64>() / xs.len() as f64;
    Some((m, xs.len()))
}

fn main() {
    let quick = sora_bench::quick_mode();
    let run_secs = if quick { 240 } else { 360 };
    let sweep_secs = if quick { 45 } else { 120 };
    let sweep = Sweep::from_env();

    // Ground truth from allocation sweeps of the monitored goodput:
    // 3 cases × 10 allocations, all independent.
    let warmup = SimTime::from_secs(sweep_secs / 3);
    let end = SimTime::from_secs(sweep_secs);
    let truth_jobs = CASES
        .into_iter()
        .flat_map(|case| {
            TRUTH_ALLOCS.into_iter().map(move |alloc| {
                job(format!("truth/{case:?}/{alloc}"), move || {
                    let w = case.run(alloc, sweep_secs, 61);
                    case.monitored_goodput(&w, warmup, end)
                })
            })
        })
        .collect();
    let truth_outcome = sweep.run(truth_jobs);

    // One long generous run per case, re-analysed per window × interval.
    let est_jobs = CASES
        .into_iter()
        .map(|case| {
            job(format!("estimate/{case:?}"), move || {
                estimate(case, run_secs)
            })
        })
        .collect();
    let est_outcome = sweep.run(est_jobs);

    let cases: Vec<CaseResult> = CASES
        .iter()
        .zip(truth_outcome.results.chunks(TRUTH_ALLOCS.len()))
        .zip(est_outcome.results)
        .map(|((_, goodputs), estimates)| {
            let truth = TRUTH_ALLOCS
                .into_iter()
                .zip(goodputs.iter().copied())
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty sweep")
                .0;
            CaseResult { truth, estimates }
        })
        .collect();
    let (cart, cat, ps) = (&cases[0], &cases[1], &cases[2]);
    println!(
        "ground truth optima — cart: {}, catalogue: {}, post storage: {}",
        cart.truth, cat.truth, ps.truth
    );

    let mut table = Table::new(vec![
        "sampling interval",
        "Cart MAPE [%]",
        "Catalogue MAPE [%]",
        "Post Storage MAPE [%]",
    ]);
    let mut json = serde_json::Map::new();
    for (i, &ms) in INTERVALS_MS.iter().enumerate() {
        let fmt = |c: &CaseResult| match mape(c.truth, &c.estimates[i].1) {
            Some((m, n)) => format!("{m:.1} (n={n})"),
            None => "no knee".to_string(),
        };
        table.row(vec![format!("{ms} ms"), fmt(cart), fmt(cat), fmt(ps)]);
        json.insert(
            format!("{ms}ms"),
            serde_json::json!({
                "cart": mape(cart.truth, &cart.estimates[i].1),
                "catalogue": mape(cat.truth, &cat.estimates[i].1),
                "post_storage": mape(ps.truth, &ps.estimates[i].1),
            }),
        );
    }
    print_table("Table 1 — SCG estimation MAPE vs sampling interval", &table);
    println!("paper's claim: 100 ms minimises MAPE for all three services");
    json.insert(
        "truth".into(),
        serde_json::json!({"cart": cart.truth, "catalogue": cat.truth, "post_storage": ps.truth}),
    );
    save_json_with_perf(
        "tab01_sampling_mape",
        &serde_json::Value::Object(json),
        &PerfMetrics::merged(&[truth_outcome.perf, est_outcome.perf]),
    );
}
