//! Scale — million-user worlds on the timing-wheel event engine.
//!
//! Drives the paper's 12-minute dual-phase trace against generated
//! Sock-Shop-shaped topologies at escalating user counts, once per event
//! engine ([`QueueBackend::TimingWheel`] vs the retained
//! [`QueueBackend::BinaryHeap`] baseline), and asserts the two engines
//! produce **identical** simulations while reporting their events/sec and
//! bytes/request. A hot-loop microbenchmark isolates the per-event cost at
//! each point's pending-event population: the new wheel + generational-slab
//! path against the seed's binary-heap + boxed-`HashMap` request store —
//! the ≥ 5× acceptance ratio of the scale work — plus a steady-state churn
//! phase asserting the wheel allocates nothing once warm.
//!
//! Flags: `--smoke` (one small audited point, canonical JSON on stdout for
//! determinism diffs), `--jobs N` (sweep parallelism; output is identical
//! for any value), `--hot-only` (just the hot-loop comparison, for quick
//! iteration). Results land in `results/BENCH_scale.json`.

use microsim::WorldConfig;
use serde::Serialize;
use sim_core::allocmeter::{self, Scope};
use sim_core::{Dist, QueueBackend, SimDuration, SimRng, SimTime, Slab, TimerWheel};
use sora_bench::{job, print_table, save_json_with_perf, Sweep, Table};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;
use telemetry::RequestId;
use topo::TopoParams;
use workload::{RateCurve, TraceShape, UserAction, UserPool};

// ---------------------------------------------------------------------
// Counting allocator, backed by `sim_core::allocmeter`: every thread owns
// lock-free thread-local counters, and each measurement opens a scope
// that worker threads (e.g. the sharded engine's window workers) adopt —
// so per-job numbers stay exact for any `--jobs` value AND any shard
// count, with the workers' allocations folded in at report time.
// ---------------------------------------------------------------------

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        allocmeter::note_alloc(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        allocmeter::note_alloc(new_size.saturating_sub(layout.size()) as u64);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------
// End-to-end points
// ---------------------------------------------------------------------

/// One escalation point of the sweep.
#[derive(Debug, Clone, Copy, Serialize)]
struct Point {
    users: u64,
    services: usize,
    /// Simulated trace length. The flagship point runs the paper's full
    /// 12 minutes; bigger populations compress the same dual-phase shape
    /// into a shorter window to keep the bench tractable.
    sim_secs: u64,
    think_ms: f64,
}

fn points(smoke: bool) -> Vec<Point> {
    if smoke {
        vec![Point {
            users: 50_000,
            services: 500,
            sim_secs: 10,
            think_ms: 10_000.0,
        }]
    } else {
        vec![
            Point {
                users: 10_000,
                services: 500,
                sim_secs: 720,
                think_ms: 10_000.0,
            },
            Point {
                users: 100_000,
                services: 2_000,
                sim_secs: 120,
                think_ms: 30_000.0,
            },
            Point {
                users: 1_000_000,
                services: 5_000,
                sim_secs: 30,
                think_ms: 60_000.0,
            },
        ]
    }
}

/// Deterministic per-run counters — byte-identical across engines and
/// `--jobs` settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
struct SimCounters {
    completed: u64,
    dropped: u64,
    events: u64,
    requests: u64,
    spans: u64,
    p99_ms_bits: u64,
}

/// One engine's run at one point.
#[derive(Debug, Clone, Copy, Serialize)]
struct EngineRun {
    counters: SimCounters,
    events_per_sec: f64,
    bytes_per_request: f64,
    allocs_per_request: f64,
    wall_secs: f64,
}

fn run_point(p: Point, backend: QueueBackend) -> EngineRun {
    let params = TopoParams {
        timeout: Some(SimDuration::from_secs(5)),
        ..TopoParams::sock_shop_like(p.services)
    };
    let config = WorldConfig {
        // Traces at this scale would dominate memory and ingest time;
        // sample hard, as production tracing does.
        trace_sample_every: 1024,
        replica_startup: Dist::constant_us(0),
        ..WorldConfig::default()
    };
    let mut t = topo::build(&params, config, SimRng::seed_from(p.users ^ 0xa11ce));
    t.world.set_queue_backend(backend);
    let curve = RateCurve::new(
        TraceShape::DualPhase,
        p.users as f64,
        SimDuration::from_secs(p.sim_secs),
    );
    let mut pool = UserPool::new(
        curve,
        Dist::exponential_ms(p.think_ms),
        SimRng::seed_from(p.users.rotate_left(17) ^ 0x9e37),
    );
    let mut mix_rng = SimRng::seed_from(p.users ^ 0x5ca1e);
    let mut user_of: HashMap<RequestId, u64> = HashMap::new();

    let scope = Scope::begin();
    let wall = Instant::now();
    let mut now = SimTime::ZERO;
    let mut done: Vec<microsim::Completion> = Vec::new();
    loop {
        let action = pool.next_action(now);
        let run_to = match action {
            UserAction::Send { at, .. } => at,
            UserAction::Idle { until } => until,
            UserAction::Finished => break,
        };
        t.world.run_until_into(run_to, &mut done);
        for c in done.drain(..) {
            if let Some(u) = user_of.remove(&c.request) {
                pool.on_completion(c.completed, u);
            }
        }
        let drop_at = t.world.now();
        for (dropped, _reason) in t.world.drain_dropped() {
            if let Some(u) = user_of.remove(&dropped) {
                pool.on_drop(drop_at, u);
            }
        }
        if let UserAction::Send { at, user } = action {
            let rt = t.request_types[mix_rng.index(t.request_types.len())];
            let id = t.world.inject_at(at, rt);
            user_of.insert(id, user);
        }
        now = run_to;
    }
    // Drain in-flight work past the trace end.
    t.world
        .run_until_into(now + SimDuration::from_secs(30), &mut done);
    for c in done.drain(..) {
        if let Some(u) = user_of.remove(&c.request) {
            pool.on_completion(c.completed, u);
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    let stats = scope.finish();

    #[cfg(feature = "audit")]
    assert_eq!(
        t.world.audit().total(),
        0,
        "audit violations at scale: {}",
        t.world.audit().summary()
    );

    let client = t.world.client();
    let requests = t.world.requests_injected();
    let counters = SimCounters {
        completed: client.total(),
        dropped: t.world.dropped(),
        events: t.world.events_dispatched(),
        requests,
        spans: t.world.spans_created(),
        p99_ms_bits: client
            .percentile(99.0)
            .map_or(0.0, |d| d.as_millis_f64())
            .to_bits(),
    };
    EngineRun {
        counters,
        events_per_sec: counters.events as f64 / wall_secs.max(1e-9),
        bytes_per_request: stats.bytes as f64 / (requests as f64).max(1.0),
        allocs_per_request: stats.count as f64 / (requests as f64).max(1.0),
        wall_secs,
    }
}

// ---------------------------------------------------------------------
// Hot-loop microbenchmark: the per-event cost in isolation
// ---------------------------------------------------------------------

/// Stand-in for a request record (the seed boxed one of these per request
/// behind a `HashMap`; the slab stores them inline).
#[derive(Clone, Copy)]
struct Payload {
    id: u64,
    frames: [u64; 6],
}

impl Payload {
    fn new(id: u64) -> Payload {
        Payload {
            id,
            frames: [id; 6],
        }
    }
}

/// Stand-in for the simulator's `Event` enum (~40 bytes of call-frame
/// coordinates), stored inline in the queue on BOTH sides — exactly what
/// `EventQueue<Event>` does. The baseline's binary heap must sift these
/// fat elements across O(log n) cache-missing levels; the wheel moves
/// each one O(1) amortized times between buckets.
#[derive(Clone, Copy)]
struct EventBody {
    words: [u64; 5],
}

impl EventBody {
    fn new(seq: u64) -> EventBody {
        EventBody { words: [seq; 5] }
    }
}

/// The baseline's heap entry: `Scheduled<Event>` from the seed —
/// `(time, insertion seq)` ordering with the event body riding along.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: u64,
    slot: u64,
    body: EventBody,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.slot) == (other.at, other.slot)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reversal, matching `Reverse<(at, seq)>` in the seed.
        (other.at, other.slot).cmp(&(self.at, self.slot))
    }
}

/// One side's result; `checksum` must agree across sides (both process the
/// identical event sequence).
#[derive(Debug, Clone, Copy, Serialize)]
struct HotLoopSide {
    ops_per_sec: f64,
    wall_secs: f64,
    checksum: u64,
}

/// Stationary churn: pop the earliest event, retire its request, admit a
/// replacement one pseudo-random delta later.
///
/// The delta mix mirrors the simulator's event population at scale:
/// almost every *dispatched* event is microsecond-scale service activity
/// (CPU quanta, child arrivals/returns), while a thin stream of long
/// timers (client timeouts, user think times) dominates the *pending*
/// set — by waiting-time weighting, an entry pending for seconds is
/// queued ~10⁴× longer than one pending for microseconds, so nearly
/// every queued entry is a long timer even though nearly every popped
/// one is short. This is the regime both engines actually face at the
/// million-user point.
fn next_delta(lcg: &mut u64) -> u64 {
    *lcg = lcg
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let x = *lcg;
    1_000 + (x >> 40) % 1_000_000 // 1 µs .. 1 ms
}

/// Live request-state slots in the hot loop's store. The store models
/// *in-flight* requests, whose count is set by service times against
/// think times — not by the pending-timer population, which at the
/// million-user point is dominated by think timers and timeouts that own
/// no request state. 64 Ki in-flight requests is already generous for
/// every point in the sweep.
const STORE_SLOTS: u64 = 1 << 16;

/// Events are keyed by *slot*: each of the `pending` slots always owns
/// exactly one pending event, so the queue population is stationary by
/// construction. Each popped event looks up and mutates the request
/// state shared by its store slot (`slot & (STORE_SLOTS-1)`) — the
/// dominant access in the simulator, where a request lives across ~dozens
/// of events — and every 16th event retires that request and admits a
/// fresh one (the allocation/removal path). Both sides process the
/// identical `(time, slot)` sequence (same LCG) — checksums must agree.
fn hot_loop_wheel_slab(pending: usize, ops: usize) -> HotLoopSide {
    let mut queue: TimerWheel<EventBody> = TimerWheel::new();
    let mut store: Slab<Payload> = Slab::with_capacity(STORE_SLOTS as usize);
    let mut keys = Vec::with_capacity(STORE_SLOTS as usize);
    let mut lcg = 0x243f6a8885a308d3u64;
    let mut seq = 0u64;
    for s in 0..STORE_SLOTS {
        keys.push(store.insert(Payload::new(s)));
    }
    for slot in 0..pending as u64 {
        queue.schedule(
            SimTime::from_nanos(next_delta(&mut lcg)),
            slot,
            EventBody::new(seq),
        );
        seq += 1;
    }
    let mut checksum = 0u64;
    let wall = Instant::now();
    for _ in 0..ops {
        let (at, slot, body) = queue.pop().expect("stationary population");
        let s = (slot & (STORE_SLOTS - 1)) as usize;
        let req = store.get_mut(keys[s]).expect("live request");
        checksum = checksum
            .wrapping_add(at.as_nanos())
            .wrapping_add(body.words[(at.as_nanos() % 5) as usize])
            .wrapping_add(req.frames[(at.as_nanos() % 6) as usize]);
        req.id = seq;
        if slot & 0xF == 0 {
            let retired = store.remove(keys[s]).expect("live request");
            checksum = checksum.wrapping_add(retired.id);
            keys[s] = store.insert(Payload::new(seq));
        }
        queue.schedule(
            at + SimDuration::from_nanos(next_delta(&mut lcg)),
            slot,
            EventBody::new(seq),
        );
        seq += 1;
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    HotLoopSide {
        ops_per_sec: ops as f64 / wall_secs.max(1e-9),
        wall_secs,
        checksum,
    }
}

fn hot_loop_heap_box(pending: usize, ops: usize) -> HotLoopSide {
    let mut queue: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let mut store: HashMap<u64, Box<Payload>> = HashMap::new();
    let mut lcg = 0x243f6a8885a308d3u64;
    let mut seq = 0u64;
    for s in 0..STORE_SLOTS {
        store.insert(s, Box::new(Payload::new(s)));
    }
    for slot in 0..pending as u64 {
        queue.push(HeapEntry {
            at: next_delta(&mut lcg),
            slot,
            body: EventBody::new(seq),
        });
        seq += 1;
    }
    let mut checksum = 0u64;
    let wall = Instant::now();
    for _ in 0..ops {
        let HeapEntry { at, slot, body } = queue.pop().expect("stationary population");
        let s = slot & (STORE_SLOTS - 1);
        let req = store.get_mut(&s).expect("live request");
        checksum = checksum
            .wrapping_add(at)
            .wrapping_add(body.words[(at % 5) as usize])
            .wrapping_add(req.frames[(at % 6) as usize]);
        req.id = seq;
        if slot & 0xF == 0 {
            let retired = store.remove(&s).expect("live request");
            checksum = checksum.wrapping_add(retired.id);
            store.insert(s, Box::new(Payload::new(seq)));
        }
        queue.push(HeapEntry {
            at: at + next_delta(&mut lcg),
            slot,
            body: EventBody::new(seq),
        });
        seq += 1;
    }
    let wall_secs = wall.elapsed().as_secs_f64();
    HotLoopSide {
        ops_per_sec: ops as f64 / wall_secs.max(1e-9),
        wall_secs,
        checksum,
    }
}

// ---------------------------------------------------------------------
// Steady-state allocation audit of the wheel itself
// ---------------------------------------------------------------------

/// Warms a wheel, then asserts a churn window allocates nothing: slot
/// buffers, the ready heap, and the wheel's recycled-bucket pool are all
/// reused.
///
/// The churn is *exactly periodic by construction*: every entry starts at
/// a random residue inside one constant power-of-two reschedule delta, so
/// its timestamp's low bits — and therefore the tick slot it revisits —
/// repeat forever, and every per-tick occupancy maximum is hit within the
/// first 64 ticks. (Random deltas would instead grow slot high-water
/// marks forever, extreme-value style, making an exact-zero assert depend
/// on the warm-up length.) The measured window is then positioned right
/// after a level-1 slot boundary and kept shorter than a level-1 span, so
/// no coarse-slot crossing — the one event that draws a buffer from the
/// wheel's spare pool — can land inside it.
fn steady_state_allocs(churn_ops: u64) -> u64 {
    const POPULATION: u64 = 50_000;
    const DELTA: u64 = 1 << 12; // 4 ticks per reschedule
    const L1_SPAN: u64 = 1 << 16; // level-1 slot width in ns
    let mut queue: TimerWheel<()> = TimerWheel::new();
    let mut lcg = 0x13198a2e03707344u64;
    for key in 0..POPULATION {
        next_delta(&mut lcg);
        queue.schedule(SimTime::from_nanos(lcg % DELTA), key, ());
    }
    // Warm up (covering at least one level-1 crossing), then stop just
    // after a level-1 boundary.
    let mut warmed = 0u64;
    loop {
        let (at, key, ()) = queue.pop().expect("stationary");
        queue.schedule(at + SimDuration::from_nanos(DELTA), key, ());
        warmed += 1;
        if warmed >= 3 * POPULATION * L1_SPAN / DELTA && at.as_nanos() % L1_SPAN < DELTA {
            break;
        }
    }
    // The window (pops AND the +DELTA schedules they trigger) must stay
    // inside the current level-1 slot: ops advance sim time by
    // DELTA/POPULATION each, and we entered at most DELTA past the
    // boundary.
    let ops = churn_ops.min((L1_SPAN - 4 * DELTA) * POPULATION / DELTA);
    let scope = Scope::begin();
    for _ in 0..ops {
        let (at, key, ()) = queue.pop().expect("stationary");
        queue.schedule(at + SimDuration::from_nanos(DELTA), key, ());
    }
    scope.finish().count
}

// ---------------------------------------------------------------------

#[derive(Debug, Clone, Serialize)]
struct PointReport {
    point: Point,
    spans_per_request: u64,
    wheel: EngineRun,
    heap: EngineRun,
    engines_identical: bool,
    events_per_sec_speedup: f64,
    hot_loop_pending: usize,
    hot_loop_ops: usize,
    hot_loop_wheel_slab: HotLoopSide,
    hot_loop_heap_box: HotLoopSide,
    hot_loop_speedup: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let pts = points(smoke);

    // Developer fast path: run only the hot-loop comparison (no sweep, no
    // JSON) so queue-layout experiments iterate in seconds.
    if std::env::args().any(|a| a == "--hot-only") {
        for &p in &pts {
            let pending = p.users as usize;
            let ops = (pending * 3).clamp(300_000, 3_000_000);
            let ws = hot_loop_wheel_slab(pending, ops);
            let hb = hot_loop_heap_box(pending, ops);
            assert_eq!(ws.checksum, hb.checksum, "hot-loop checksum mismatch");
            println!(
                "pending {:>8}  wheel+slab {:>10.0} ops/s  heap+box {:>10.0} ops/s  speedup {:.2}x",
                pending,
                ws.ops_per_sec,
                hb.ops_per_sec,
                ws.ops_per_sec / hb.ops_per_sec
            );
        }
        return;
    }
    let spans_per_request = TopoParams::sock_shop_like(12).spans_per_request();

    // The wheel must be allocation-free at steady state — checked before
    // any measurement so a regression fails loudly, not as noise.
    let churn = if smoke { 200_000 } else { 1_000_000 };
    let steady = steady_state_allocs(churn);
    assert_eq!(
        steady, 0,
        "timing wheel allocated {steady} times during steady-state churn"
    );

    // Every (point × engine) is one sweep job; output is index-aligned,
    // so it is byte-identical for any --jobs value.
    let mut jobs = Vec::new();
    for &p in &pts {
        jobs.push(job(format!("wheel-{}u", p.users), move || {
            run_point(p, QueueBackend::TimingWheel)
        }));
        jobs.push(job(format!("heap-{}u", p.users), move || {
            run_point(p, QueueBackend::BinaryHeap)
        }));
    }
    let outcome = Sweep::from_env().run(jobs);

    // The hot loop is timing-sensitive: run it single-threaded, after the
    // sweep, so parallel jobs cannot skew the ratio.
    let mut reports = Vec::new();
    for (i, &p) in pts.iter().enumerate() {
        let wheel = outcome.results[2 * i];
        let heap = outcome.results[2 * i + 1];
        assert_eq!(
            wheel.counters, heap.counters,
            "engines diverged at {} users",
            p.users
        );
        let pending = p.users as usize;
        let ops = (pending * 3).clamp(300_000, 3_000_000);
        let ws = hot_loop_wheel_slab(pending, ops);
        let hb = hot_loop_heap_box(pending, ops);
        assert_eq!(
            ws.checksum, hb.checksum,
            "hot-loop sides processed different event sequences"
        );
        reports.push(PointReport {
            point: p,
            spans_per_request,
            wheel,
            heap,
            engines_identical: true,
            events_per_sec_speedup: wheel.events_per_sec / heap.events_per_sec.max(1e-9),
            hot_loop_pending: pending,
            hot_loop_ops: ops,
            hot_loop_wheel_slab: ws,
            hot_loop_heap_box: hb,
            hot_loop_speedup: ws.ops_per_sec / hb.ops_per_sec.max(1e-9),
        });
    }

    let mut table = Table::new(vec![
        "users",
        "services",
        "sim [s]",
        "events",
        "wheel [Mev/s]",
        "heap [Mev/s]",
        "e2e ×",
        "hot loop ×",
        "bytes/req",
    ]);
    for r in &reports {
        table.row(vec![
            format!("{}", r.point.users),
            format!("{}", r.point.services),
            format!("{}", r.point.sim_secs),
            format!("{}", r.wheel.counters.events),
            format!("{:.1}", r.wheel.events_per_sec / 1e6),
            format!("{:.1}", r.heap.events_per_sec / 1e6),
            format!("{:.2}", r.events_per_sec_speedup),
            format!("{:.1}", r.hot_loop_speedup),
            format!("{:.0}", r.wheel.bytes_per_request),
        ]);
    }
    if !smoke {
        // Smoke stdout is diffed across --jobs values and must stay free
        // of wall-clock-derived numbers; the table has rate columns.
        print_table("Scale — timing wheel vs heap baseline", &table);
    }

    let data = serde_json::json!({
        "trace": {
            "shape": "DualPhase",
            "minutes": 12,
            "note": "flagship point runs the full 12-minute trace; larger populations compress the same shape",
        },
        "smoke": smoke,
        "steady_state": { "churn_ops": churn, "allocs": steady },
        "points": reports,
    });
    if smoke {
        // The smoke gate diffs this stdout across --jobs values: print
        // only deterministic counters (no wall-clock-derived rates).
        let canonical: Vec<serde_json::Value> = reports
            .iter()
            .map(|r| {
                serde_json::json!({
                    "users": r.point.users,
                    "services": r.point.services,
                    "sim_secs": r.point.sim_secs,
                    "wheel": r.wheel.counters,
                    "heap": r.heap.counters,
                    "engines_identical": r.engines_identical,
                    "steady_state_allocs": steady,
                    "hot_loop_checksum": r.hot_loop_wheel_slab.checksum,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&canonical).expect("serialize")
        );
    }
    save_json_with_perf("BENCH_scale", &data, &outcome.perf);
}
