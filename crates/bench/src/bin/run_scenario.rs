//! Config-driven scenario runner: describe an experiment as JSON and run
//! it without writing Rust.
//!
//! ```bash
//! cargo run --release -p sora-bench --bin run_scenario -- scenario.json
//! cargo run --release -p sora-bench --bin run_scenario -- --print-template
//! ```
//!
//! The JSON schema is [`sora_bench::config::ScenarioSpec`]; results are
//! printed as a summary and archived under `results/scenario_<name>.json`.

use sora_bench::config::{App, Hardware, ScenarioSpec, SoftAdaptation};
use sora_bench::{job, save_json_with_perf, Sweep};
use workload::TraceShape;

fn template() -> ScenarioSpec {
    ScenarioSpec {
        app: App::SockShop,
        trace: TraceShape::SteepTriPhase,
        max_users: 3_500.0,
        duration_secs: 720,
        sla_ms: 400,
        hardware: Hardware::Firm,
        soft: SoftAdaptation::Sora,
        seed: 42,
        cart_threads: Some(5),
        cart_cores: Some(2),
        home_timeline_conns: None,
        drift_at_secs: None,
        shards: None,
        services: None,
        topo_seed: None,
        retry: None,
        net: None,
        faults: Vec::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--print-template") => {
            println!(
                "{}",
                serde_json::to_string_pretty(&template()).expect("template serialises")
            );
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let spec = ScenarioSpec::parse(&text).unwrap_or_else(|e| {
                eprintln!("error: invalid scenario config {path}: {e}");
                std::process::exit(2);
            });
            println!("running: {spec:#?}");
            let run_spec = spec.clone();
            let sweep_outcome =
                Sweep::from_env().run(vec![job("scenario", move || run_spec.run())]);
            let outcome = sweep_outcome
                .results
                .into_iter()
                .next()
                .expect("one scenario run");
            println!(
                "\ncompleted {}  dropped {}  mean {:.1} ms  p95 {:.0} ms  p99 {:.0} ms  \
                 goodput({} ms) {:.0} req/s",
                outcome.summary.completed,
                outcome.summary.dropped,
                outcome.summary.mean_rt_ms,
                outcome.summary.p95_ms,
                outcome.summary.p99_ms,
                spec.sla_ms,
                outcome.summary.goodput_rps,
            );
            let stem = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("scenario");
            save_json_with_perf(
                &format!("scenario_{stem}"),
                &sora_bench::scenario_result_data(&spec, &outcome),
                &sweep_outcome.perf,
            );
        }
        None => {
            eprintln!("usage: run_scenario <config.json> | --print-template");
            std::process::exit(2);
        }
    }
}
