//! Figure 10 — FIRM vs FIRM + Sora under the "Steep Tri Phase" trace.
//!
//! The Cart starts at 2 cores with the 5-thread pool that is optimal for
//! that limit. FIRM scales the CPU up during the surges but never touches
//! the pool, so the new cores cannot be fed (the paper's "CPU utilisation
//! stuck at ~310 % of 400 %"); Sora re-adapts the pool after each hardware
//! change. Prints the timeline panels (response time, goodput, CPU
//! util/limit, running threads) and the summary.

use autoscalers::{FirmConfig, FirmController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::SimDuration;
use sora_bench::{
    cart_run, job, print_table, save_json_with_perf, trace_secs, CartSetup, Sweep, Table,
};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use telemetry::ServiceId;
use workload::TraceShape;

/// Sock Shop service-id layout (fixed by construction order).
const CART: ServiceId = ServiceId(1);

fn firm_config() -> FirmConfig {
    FirmConfig {
        // FIRM manages the Cart instance's CPU, 1–4 cores in 1-core steps.
        services: vec![CART],
        localize: LocalizeConfig {
            min_on_path: 30,
            ..Default::default()
        },
        min_limit: Millicores::from_cores(1),
        max_limit: Millicores::from_cores(4),
        ..Default::default()
    }
}

fn sora_over_firm() -> SoraController<FirmController> {
    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: CART },
        ResourceBounds { min: 5, max: 200 },
    );
    SoraController::sora(
        SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            ..Default::default()
        },
        registry,
        FirmController::new(firm_config()),
    )
}

fn print_timeline(name: &str, result: &apps::RunResult) {
    let mut table = Table::new(vec![
        "t [s]",
        "RT [ms]",
        "goodput [req/s]",
        "CPU util [%]",
        "CPU limit [%]",
        "threads",
    ]);
    // One row per 30 s keeps the console output readable; the JSON carries
    // the full 1 s resolution.
    for row in result.timeline.iter().step_by(30) {
        let t = row.t_secs as usize;
        let rt = result
            .rt_timeline
            .get(t.saturating_sub(1))
            .map_or(0.0, |&(_, v)| v);
        let gp = result
            .goodput_timeline
            .get(t.saturating_sub(1))
            .map_or(0.0, |&(_, v)| v);
        table.row(vec![
            format!("{t}"),
            format!("{rt:.0}"),
            format!("{gp:.0}"),
            format!("{:.0}", row.utilization * row.cpu_limit_mc as f64 / 10.0),
            format!("{:.0}", row.cpu_limit_mc / 10),
            format!("{}", row.running_threads),
        ]);
    }
    print_table(format!("Fig. 10 timeline — {name}"), &table);
    println!(
        "summary: p95 {:.0} ms, p99 {:.0} ms, goodput(400ms) {:.0} req/s, completed {}, dropped {}",
        result.summary.p95_ms,
        result.summary.p99_ms,
        result.summary.goodput_rps,
        result.summary.completed,
        result.summary.dropped
    );
}

fn main() {
    let setup = CartSetup {
        shape: TraceShape::SteepTriPhase,
        secs: trace_secs(),
        ..Default::default()
    };

    let outcome = Sweep::from_env().run(vec![
        job("firm-only", move || {
            let mut firm_only = FirmController::new(firm_config());
            (cart_run(&setup, &mut firm_only).0, Vec::new())
        }),
        job("firm+sora", move || {
            let mut sora = sora_over_firm();
            let result = cart_run(&setup, &mut sora).0;
            let actions = sora.actions().to_vec();
            (result, actions)
        }),
    ]);
    let mut results = outcome.results.into_iter();
    let (firm_result, _) = results.next().expect("firm run");
    let (sora_result, sora_actions) = results.next().expect("sora run");
    print_timeline("FIRM", &firm_result);
    print_timeline("FIRM + Sora", &sora_result);
    println!("sora actuations: {sora_actions:?}");

    // The paper's headline: Sora stabilises the fluctuation and cuts tail
    // latency (2.2× on average across traces).
    println!("\n== Fig. 10 verdict ==");
    println!(
        "p99: FIRM {:.0} ms vs Sora {:.0} ms ({:.2}x)",
        firm_result.summary.p99_ms,
        sora_result.summary.p99_ms,
        firm_result.summary.p99_ms / sora_result.summary.p99_ms.max(1.0)
    );
    println!(
        "goodput: FIRM {:.0} vs Sora {:.0} req/s",
        firm_result.summary.goodput_rps, sora_result.summary.goodput_rps
    );
    let peak_threads_firm = firm_result
        .timeline
        .iter()
        .map(|r| r.thread_limit)
        .max()
        .unwrap_or(0);
    let peak_threads_sora = sora_result
        .timeline
        .iter()
        .map(|r| r.thread_limit)
        .max()
        .unwrap_or(0);
    println!("thread limit: FIRM stays at {peak_threads_firm}, Sora reaches {peak_threads_sora}");

    save_json_with_perf(
        "fig10_firm_vs_sora",
        &serde_json::json!({
            "firm": {
                "timeline": firm_result.timeline,
                "rt": firm_result.rt_timeline,
                "goodput": firm_result.goodput_timeline,
                "summary": firm_result.summary,
            },
            "sora": {
                "timeline": sora_result.timeline,
                "rt": sora_result.rt_timeline,
                "goodput": sora_result.goodput_timeline,
                "summary": sora_result.summary,
                "actions": sora_actions.iter()
                    .map(|(t, r, v)| (t.as_secs_f64(), r.clone(), *v))
                    .collect::<Vec<_>>(),
            },
        }),
        &outcome.perf,
    );
}
