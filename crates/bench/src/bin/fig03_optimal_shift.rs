//! Figure 3 — "optimal" soft-resource allocation shifts with the response
//! time threshold, the CPU limit, and the request weight.
//!
//! Sweeps the Cart thread pool over {3, 5, 10, 30, 80, 200} under four
//! (cores, threshold) configurations, and the Home-Timeline → Post Storage
//! connection pool over {5, 10, 15, 30, 80, 200} under light/heavy request
//! weights, printing normalised goodput per allocation — the paper's six
//! subfigures.

use sim_core::SimDuration;
use sora_bench::{
    job, post_storage_goodput, print_table, save_json_with_perf, sweep_cart_goodput_outcome,
    PerfMetrics, Sweep, Table,
};

/// The paper's notion of the "optimal" allocation: the smallest pool that
/// attains (within noise) the highest goodput.
fn smallest_near_max(sweep: &[(usize, f64)]) -> usize {
    let max = sweep.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
    sweep
        .iter()
        .find(|&&(_, g)| g >= 0.98 * max)
        .expect("non-empty sweep")
        .0
}

fn main() {
    let quick = sora_bench::quick_mode();
    let secs = if quick { 60 } else { 180 }; // the paper's 3-minute probes
    let cart_pools = [3usize, 5, 10, 30, 80, 200];
    let conn_pools = [5usize, 10, 15, 30, 80, 200];

    // (label, cart cores, threshold ms, users): users sized so the Cart is
    // the saturated service at each CPU limit (ρ slightly above 1 at peak).
    let cart_configs = [
        ("(a) 4-core cart, 250 ms", 4u32, 250u64, 3_250.0),
        ("(b) 4-core cart, 150 ms", 4, 150, 3_250.0),
        ("(c) 2-core cart, 250 ms", 2, 250, 1_750.0),
        ("(d) 2-core cart, 350 ms", 2, 350, 1_750.0),
    ];

    let mut results = serde_json::Map::new();
    let mut optima: Vec<(String, usize)> = Vec::new();
    let mut perfs: Vec<PerfMetrics> = Vec::new();

    for (label, cores, thr_ms, users) in cart_configs {
        let outcome = sweep_cart_goodput_outcome(
            &cart_pools,
            cores,
            users,
            secs,
            SimDuration::from_millis(thr_ms),
            7,
        );
        perfs.push(outcome.perf);
        let sweep = outcome.results;
        let max = sweep
            .iter()
            .map(|&(_, g)| g)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut table = Table::new(vec!["thread pool", "goodput [req/s]", "normalised"]);
        for &(pool, g) in &sweep {
            table.row(vec![
                pool.to_string(),
                format!("{g:.0}"),
                format!("{:.2}", g / max),
            ]);
        }
        print_table(format!("Fig. 3{label}"), &table);
        let best = smallest_near_max(&sweep);
        println!("  -> optimal allocation: {best} threads");
        optima.push((label.to_string(), best));
        results.insert(
            label.to_string(),
            serde_json::json!(sweep.iter().map(|&(p, g)| (p, g)).collect::<Vec<_>>()),
        );
    }

    for (label, heavy, users) in [
        ("(e) post storage, light requests", false, 4_200.0),
        ("(f) post storage, heavy requests", true, 4_200.0),
    ] {
        let jobs = conn_pools
            .iter()
            .map(|&conns| {
                job(format!("ps-conns-{conns}"), move || {
                    (
                        conns,
                        post_storage_goodput(
                            conns,
                            heavy,
                            4,
                            users,
                            secs,
                            SimDuration::from_millis(250),
                            7,
                        ),
                    )
                })
            })
            .collect();
        let outcome = Sweep::from_env().run(jobs);
        perfs.push(outcome.perf);
        let sweep = outcome.results;
        let max = sweep
            .iter()
            .map(|&(_, g)| g)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut table = Table::new(vec!["conn pool", "goodput [req/s]", "normalised"]);
        for &(pool, g) in &sweep {
            table.row(vec![
                pool.to_string(),
                format!("{g:.0}"),
                format!("{:.2}", g / max),
            ]);
        }
        print_table(format!("Fig. 3{label}"), &table);
        let best = smallest_near_max(&sweep);
        println!("  -> optimal allocation: {best} connections");
        optima.push((label.to_string(), best));
        results.insert(
            label.to_string(),
            serde_json::json!(sweep.iter().map(|&(p, g)| (p, g)).collect::<Vec<_>>()),
        );
    }

    println!("\n== Shifts (paper's qualitative claims) ==");
    let get = |prefix: &str| {
        optima
            .iter()
            .find(|(l, _)| l.starts_with(prefix))
            .expect("ran")
            .1
    };
    println!(
        "threshold 250→150 ms at 4 cores: optimal {} → {} (paper: 30 → 80, grows)",
        get("(a)"),
        get("(b)")
    );
    println!(
        "threshold 250→350 ms at 2 cores: optimal {} → {} (paper: 10 → 5, shrinks)",
        get("(c)"),
        get("(d)")
    );
    println!(
        "CPU 2→4 cores at 250 ms: optimal {} → {} (paper: 10 → 30, grows)",
        get("(c)"),
        get("(a)")
    );
    println!(
        "request weight light→heavy: optimal {} → {} (paper: 10 → 30, grows)",
        get("(e)"),
        get("(f)")
    );
    save_json_with_perf(
        "fig03_optimal_shift",
        &serde_json::Value::Object(results),
        &PerfMetrics::merged(&perfs),
    );
}
