//! Figure 7 — concurrency–goodput scatter of the Cart at 100 ms
//! granularity over a 3-minute bursty run, under a 5 ms vs a 50 ms
//! response-time threshold: the knee moves with the threshold.

use sim_core::{SimDuration, SimTime};
use sora_bench::{cart_run, job, print_table, save_json_with_perf, CartSetup, Sweep, Table};
use sora_core::NullController;
use telemetry::build_scatter;
use workload::TraceShape;

fn main() {
    let secs = if sora_bench::quick_mode() { 90 } else { 180 };
    let setup = CartSetup {
        shape: TraceShape::LargeVariation,
        max_users: 2_600.0,
        secs,
        params: apps::SockShopParams {
            cart_cores: 4,
            cart_threads: 30,
            ..Default::default()
        },
        report_rtt: SimDuration::from_millis(250),
        seed: 23,
    };
    let outcome = Sweep::from_env().run(vec![job("scatter-run", move || {
        let mut null = NullController;
        cart_run(&setup, &mut null).1
    })]);
    let world = outcome.results.into_iter().next().expect("one run");

    let cart = telemetry::ServiceId(1);
    let pod = world.ready_replicas(cart)[0];
    let conc = world.concurrency_of(pod).expect("cart replica");
    let comp = world.completions_of(pod).expect("cart replica");
    let from = SimTime::from_secs(secs.saturating_sub(180));
    let to = SimTime::from_secs(secs);
    let model = scg::ScgModel::default();

    let mut json = serde_json::Map::new();
    for thr_ms in [5u64, 50] {
        let pts = build_scatter(
            conc,
            comp,
            from,
            to,
            SimDuration::from_millis(100),
            SimDuration::from_millis(thr_ms),
        );
        let bins = model.aggregate(&pts);
        let mut table = Table::new(vec!["concurrency Q", "mean goodput [req/s]"]);
        for &(q, gp) in &bins {
            table.row(vec![format!("{q:.0}"), format!("{gp:.0}")]);
        }
        print_table(
            format!("Fig. 7 — scatter with {thr_ms} ms threshold"),
            &table,
        );
        match model.estimate(&pts) {
            Some(est) => println!(
                "  knee: Q = {} (goodput {:.0} req/s, degree {})",
                est.optimal, est.rate_at_optimal, est.degree
            ),
            None => println!("  knee: none detected (insufficient saturation)"),
        }
        json.insert(
            format!("threshold_{thr_ms}ms"),
            serde_json::json!({
                "bins": bins,
                "points": pts.len(),
                "knee": model.estimate(&pts).map(|e| e.optimal),
            }),
        );
    }
    println!(
        "paper's claim: the 5 ms and 50 ms thresholds yield different knees\n\
         (goodput measurement is highly sensitive to the threshold)"
    );
    save_json_with_perf(
        "fig07_scatter_thresholds",
        &serde_json::Value::Object(json),
        &outcome.perf,
    );
}
