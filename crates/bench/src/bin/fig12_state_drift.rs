//! Figure 12 — Kubernetes HPA vs HPA + Sora under "Large Variation" with a
//! request-type change (system-state drift) at 451 s.
//!
//! Post Storage scales horizontally under HPA; the Home-Timeline →
//! Post Storage client pool stays static in the HPA-only case, becoming the
//! bottleneck once heavy requests hold each connection longer. Sora
//! re-estimates the per-replica optimum and sizes the pool as
//! optimum × replicas (the paper's "120 connections for 4 replicas").

use autoscalers::{HpaConfig, HpaController};
use scg::LocalizeConfig;
use sim_core::SimDuration;
use sora_bench::{
    drift_run, job, print_table, save_json_with_perf, trace_secs, DriftSetup, Sweep, Table,
};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use telemetry::ServiceId;

/// Social Network id layout (fixed by construction order).
const HOME_TIMELINE: ServiceId = ServiceId(1);
const POST_STORAGE: ServiceId = ServiceId(2);

fn hpa() -> HpaController {
    HpaController::new(
        POST_STORAGE,
        HpaConfig {
            max_replicas: 6,
            ..Default::default()
        },
    )
}

fn print_timeline(name: &str, result: &apps::RunResult) {
    let mut table = Table::new(vec![
        "t [s]",
        "RT [ms]",
        "goodput [req/s]",
        "PS util [%]",
        "PS replicas",
        "conns in use",
        "conns established",
    ]);
    for row in result.timeline.iter().step_by(30) {
        let t = row.t_secs as usize;
        let rt = result
            .rt_timeline
            .get(t.saturating_sub(1))
            .map_or(0.0, |&(_, v)| v);
        let gp = result
            .goodput_timeline
            .get(t.saturating_sub(1))
            .map_or(0.0, |&(_, v)| v);
        table.row(vec![
            format!("{t}"),
            format!("{rt:.0}"),
            format!("{gp:.0}"),
            format!("{:.0}", row.utilization * 100.0),
            format!("{}", row.replicas),
            format!("{}", row.conns_in_use),
            format!("{}", row.conns_established),
        ]);
    }
    print_table(format!("Fig. 12 timeline — {name}"), &table);
    println!(
        "summary: p95 {:.0} ms, p99 {:.0} ms, goodput(400ms) {:.0} req/s, dropped {}",
        result.summary.p95_ms,
        result.summary.p99_ms,
        result.summary.goodput_rps,
        result.summary.dropped
    );
}

fn main() {
    let secs = trace_secs();
    let setup = DriftSetup {
        secs,
        drift_at_secs: Some(secs * 451 / 720), // scale the paper's 451 s mark
        ..Default::default()
    };

    let outcome = Sweep::from_env().run(vec![
        job("hpa-only", move || {
            let mut hpa_only = hpa();
            (drift_run(&setup, &mut hpa_only).0, Vec::new())
        }),
        job("hpa+sora", move || {
            let registry = ResourceRegistry::new().with(
                SoftResource::ConnPool {
                    caller: HOME_TIMELINE,
                    target: POST_STORAGE,
                },
                ResourceBounds { min: 4, max: 256 },
            );
            let mut sora = SoraController::sora(
                SoraConfig {
                    sla: SimDuration::from_millis(400),
                    localize: LocalizeConfig {
                        min_on_path: 30,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                registry,
                hpa(),
            );
            let res = drift_run(&setup, &mut sora).0;
            let actions = sora.actions().to_vec();
            (res, actions)
        }),
    ]);
    let mut results = outcome.results.into_iter();
    let (hpa_res, _) = results.next().expect("hpa run");
    let (sora_res, sora_actions) = results.next().expect("sora run");
    print_timeline("Kubernetes HPA (static connections)", &hpa_res);
    print_timeline("HPA + Sora (adaptive connections)", &sora_res);
    println!("sora actuations: {sora_actions:?}");

    println!("\n== Fig. 12 verdict ==");
    println!(
        "p99: HPA {:.0} ms vs Sora {:.0} ms ({:.2}x)",
        hpa_res.summary.p99_ms,
        sora_res.summary.p99_ms,
        hpa_res.summary.p99_ms / sora_res.summary.p99_ms.max(1.0)
    );
    println!(
        "goodput: HPA {:.0} vs Sora {:.0} req/s",
        hpa_res.summary.goodput_rps, sora_res.summary.goodput_rps
    );
    let final_conns = |r: &apps::RunResult| r.timeline.last().map_or(0, |x| x.conns_established);
    println!(
        "established connections at end: HPA {} (static) vs Sora {} (scaled with replicas)",
        final_conns(&hpa_res),
        final_conns(&sora_res)
    );

    save_json_with_perf(
        "fig12_state_drift",
        &serde_json::json!({
            "hpa": {
                "timeline": hpa_res.timeline,
                "rt": hpa_res.rt_timeline,
                "goodput": hpa_res.goodput_timeline,
                "summary": hpa_res.summary,
            },
            "sora": {
                "timeline": sora_res.timeline,
                "rt": sora_res.rt_timeline,
                "goodput": sora_res.goodput_timeline,
                "summary": sora_res.summary,
                "actions": sora_actions.iter()
                    .map(|(t, r, v)| (t.as_secs_f64(), r.clone(), *v))
                    .collect::<Vec<_>>(),
            },
        }),
        &outcome.perf,
    );
}
