//! Network resilience — the message-passing substrate under hostile links.
//!
//! Sock Shop's Cart path runs the Steep Tri Phase trace over an installed
//! [`net::Network`]: every child call, return, and telemetry report is a
//! message with per-edge latency, loss, bandwidth, and timeout semantics.
//! Four scenarios stress the substrate where the function-edge engine has
//! no vocabulary at all:
//!
//! * `partition-heal` — the Cart↔CartDB link partitions mid-run and heals;
//!   calls time out, resend, and finally abort as `NetTimedOut` until the
//!   window closes, after which throughput must recover.
//! * `slow-link` — the same link degrades to 12× latency instead of
//!   failing outright: no losses, just a latency cliff and recovery.
//! * `retry-storm` — CartDB crashes while the link has finite bandwidth
//!   and a bounded queue; per-call resends pile onto the link until it
//!   saturates, surfacing as `lost_saturated` instead of hiding as load.
//! * `telemetry-reorder-{guard,noguard}` — the control-plane trap: the
//!   telemetry edge delays reports by up to seconds (reordering them),
//!   loses a few, and duplicates others while the data plane suffers the
//!   crash + pressure + blackout schedule. Stragglers delivered after the
//!   blackout opens keep the *freshness* signal green even though the
//!   window is starving, so the guard variant also requires a minimum
//!   window population (`min_window_samples`). The ablation keeps
//!   estimating from the thin, reordered scatter.
//!
//! The verdict compares SLO violations (missed threshold + drops) with the
//! hardened guard on vs off under identical reordered telemetry.
//!
//! Flags: `--quick` (3-minute runs), `--smoke` (90 s runs plus a canonical
//! JSON dump on stdout for determinism diffs), `--jobs N` (sweep
//! parallelism; the output is byte-identical for any value).

use apps::{RunResult, Scenario, ScenarioConfig, SockShop, SockShopParams, Watch};
use autoscalers::{HpaConfig, HpaController};
use microsim::{BlackoutMode, FaultSchedule, World, WorldConfig};
use net::{EdgeParams, NetworkConfig};
use scg::LocalizeConfig;
use serde::Serialize;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_bench::{job, print_table, save_json_with_perf, scenarios::THINK_MS, Sweep, Table};
use sora_core::{
    Controller, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController,
};
use telemetry::ServiceId;
use workload::{Mix, RateCurve, RetryPolicy, TraceShape, UserPool};

/// Sock Shop service-id layout (fixed by construction order).
const CART: ServiceId = ServiceId(1);
const CART_DB: ServiceId = ServiceId(2);

/// End-to-end SLA for goodput and SLO-violation accounting.
const SLA: SimDuration = SimDuration::from_millis(400);

/// The canned scenarios, scaled per mode.
#[derive(Debug, Clone, Copy)]
struct NetSetup {
    secs: u64,
    max_users: f64,
    /// Partition / slow-link window on Cart↔CartDB.
    fault_at: u64,
    fault_secs: u64,
    slow_factor: f64,
    /// Crash + pressure + blackout schedule for the telemetry scenarios.
    crash_at: u64,
    restart_secs: u64,
    pressure_at: u64,
    pressure_secs: u64,
    pressure_factor: f64,
    blackout_at: u64,
    blackout_secs: u64,
    staleness_secs: u64,
    min_window_samples: u64,
    /// Telemetry-edge pathology: delay jitter, loss, duplication.
    telemetry_jitter_ms: u64,
    telemetry_loss: f64,
    telemetry_dup: f64,
    seed: u64,
}

fn setup() -> NetSetup {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        NetSetup {
            secs: 90,
            max_users: 800.0,
            fault_at: 25,
            fault_secs: 20,
            slow_factor: 12.0,
            crash_at: 20,
            restart_secs: 10,
            pressure_at: 40,
            pressure_secs: 30,
            pressure_factor: 0.5,
            blackout_at: 40,
            blackout_secs: 25,
            staleness_secs: 20,
            min_window_samples: 20,
            telemetry_jitter_ms: 4_000,
            telemetry_loss: 0.05,
            telemetry_dup: 0.10,
            seed: 42,
        }
    } else if sora_bench::quick_mode() {
        NetSetup {
            secs: 180,
            max_users: 3_500.0,
            fault_at: 60,
            fault_secs: 40,
            slow_factor: 12.0,
            crash_at: 40,
            restart_secs: 15,
            pressure_at: 80,
            pressure_secs: 60,
            pressure_factor: 0.35,
            blackout_at: 80,
            blackout_secs: 45,
            staleness_secs: 20,
            min_window_samples: 20,
            telemetry_jitter_ms: 6_000,
            telemetry_loss: 0.05,
            telemetry_dup: 0.10,
            seed: 42,
        }
    } else {
        NetSetup {
            secs: 720,
            max_users: 3_500.0,
            fault_at: 240,
            fault_secs: 120,
            slow_factor: 12.0,
            crash_at: 120,
            restart_secs: 30,
            pressure_at: 300,
            pressure_secs: 150,
            pressure_factor: 0.35,
            blackout_at: 300,
            blackout_secs: 120,
            staleness_secs: 20,
            min_window_samples: 20,
            telemetry_jitter_ms: 6_000,
            telemetry_loss: 0.05,
            telemetry_dup: 0.10,
            seed: 42,
        }
    }
}

/// 200 µs everywhere, with a 250 ms / 2-retry call timeout on the tunable
/// Cart→CartDB edge so partitions surface as bounded timeouts, not hangs.
fn base_network() -> NetworkConfig {
    let wire = EdgeParams::constant(SimDuration::from_micros(200));
    NetworkConfig::transparent()
        .default_edge(wire)
        .client_edge(wire)
        .edge(
            CART,
            CART_DB,
            wire.timeout(SimDuration::from_millis(250), 2),
        )
}

/// The base network with a pathological telemetry edge: reports delayed by
/// a uniform jitter (reordering them), occasionally lost, and sometimes
/// delivered twice.
fn reordered_telemetry_network(s: NetSetup) -> NetworkConfig {
    base_network().telemetry_edge(
        EdgeParams::default()
            .latency(Dist::uniform_ms(0, s.telemetry_jitter_ms))
            .loss(s.telemetry_loss)
            .duplicate(s.telemetry_dup),
    )
}

/// Crash + node pressure + telemetry blackout, as in the fault bench.
fn control_plane_schedule(s: NetSetup, world: &World) -> FaultSchedule {
    let node = world
        .node_of(world.ready_replicas(CART)[0])
        .expect("cart replica placed");
    FaultSchedule::new()
        .crash(
            SimTime::from_secs(s.crash_at),
            CART,
            Some(SimDuration::from_secs(s.restart_secs)),
        )
        .cpu_pressure(
            SimTime::from_secs(s.pressure_at),
            node,
            s.pressure_factor,
            SimDuration::from_secs(s.pressure_secs),
        )
        .telemetry_blackout(
            SimTime::from_secs(s.blackout_at),
            BlackoutMode::Drop,
            SimDuration::from_secs(s.blackout_secs),
        )
}

fn run_variant(
    s: NetSetup,
    network: NetworkConfig,
    faults: impl FnOnce(&World) -> FaultSchedule,
    controller: &mut dyn Controller,
) -> (RunResult, World) {
    let mut shop = SockShop::build_with_config(
        SockShopParams::default(),
        WorldConfig {
            trace_sample_every: 10,
            ..Default::default()
        },
        SimRng::seed_from(s.seed),
    );
    shop.world.install_network(network);
    let schedule = faults(&shop.world);
    shop.world
        .install_faults(schedule)
        .expect("valid fault schedule");
    let curve = RateCurve::new(
        TraceShape::SteepTriPhase,
        s.max_users,
        SimDuration::from_secs(s.secs),
    );
    let pool = UserPool::new(
        curve,
        Dist::exponential_ms(THINK_MS),
        SimRng::seed_from(s.seed ^ 0x9e37),
    )
    .with_retry(RetryPolicy::default());
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SLA,
            ..Default::default()
        },
        pool,
        Mix::single(shop.get_cart),
        Watch {
            service: shop.cart,
            conns: None,
        },
    );
    let result = scenario.run(&mut shop.world, controller);
    // Lossy links, duplicates, and orphaned frames must still leave every
    // conservation ledger clean.
    #[cfg(feature = "audit")]
    assert_eq!(
        shop.world.audit().total(),
        0,
        "audit violations under network faults: {}",
        shop.world.audit().summary()
    );
    (result, shop.world)
}

fn sora_over_hpa(s: NetSetup, degradation: bool) -> SoraController<HpaController> {
    let registry = ResourceRegistry::new().with(
        SoftResource::ThreadPool { service: CART },
        ResourceBounds { min: 5, max: 200 },
    );
    SoraController::sora(
        SoraConfig {
            sla: SLA,
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            degradation,
            staleness_bound: SimDuration::from_secs(s.staleness_secs),
            min_window_samples: if degradation { s.min_window_samples } else { 1 },
            ..Default::default()
        },
        registry,
        HpaController::new(CART, HpaConfig::default()),
    )
}

/// One scenario's results over the simulated network.
#[derive(Debug, Clone, Serialize)]
struct VariantReport {
    label: String,
    completed: u64,
    dropped: u64,
    drop_breakdown: microsim::DropBreakdown,
    retry: workload::RetryStats,
    goodput_rps: f64,
    /// Requests that missed the SLA plus requests dropped outright.
    slo_violations: u64,
    p95_ms: f64,
    p99_ms: f64,
    net: net::NetStats,
    /// Duplicate trace reports the warehouse refused to double-count.
    telemetry_duplicates_dropped: u64,
    /// Control periods the degradation guard skipped.
    frozen_periods: u64,
    final_thread_limit: usize,
    fault_log: Vec<(f64, String)>,
}

fn report(label: &str, result: &RunResult, world: &World, frozen_periods: u64) -> VariantReport {
    let client = world.client();
    let missed = client.total() - client.goodput_count(SLA);
    VariantReport {
        label: label.to_string(),
        completed: result.summary.completed,
        dropped: result.summary.dropped,
        drop_breakdown: result.summary.drop_breakdown,
        retry: result.retry,
        goodput_rps: result.summary.goodput_rps,
        slo_violations: missed + result.summary.dropped,
        p95_ms: result.summary.p95_ms,
        p99_ms: result.summary.p99_ms,
        net: world.network_stats().expect("network installed"),
        telemetry_duplicates_dropped: world.warehouse().duplicates_dropped(),
        frozen_periods,
        final_thread_limit: world.thread_limit(CART),
        fault_log: world
            .fault_log()
            .iter()
            .map(|(at, what)| (at.as_secs_f64(), what.clone()))
            .collect(),
    }
}

fn main() {
    let s = setup();
    let smoke = std::env::args().any(|a| a == "--smoke");

    let outcome = Sweep::from_env().run(vec![
        job("partition-heal", move || {
            let mut sora = sora_over_hpa(s, true);
            let (result, world) = run_variant(
                s,
                base_network(),
                |_| {
                    FaultSchedule::new().partition(
                        SimTime::from_secs(s.fault_at),
                        CART,
                        CART_DB,
                        SimDuration::from_secs(s.fault_secs),
                    )
                },
                &mut sora,
            );
            report("partition-heal", &result, &world, sora.frozen_periods())
        }),
        job("slow-link", move || {
            let mut sora = sora_over_hpa(s, true);
            let (result, world) = run_variant(
                s,
                base_network(),
                |_| {
                    FaultSchedule::new().slow_link(
                        SimTime::from_secs(s.fault_at),
                        CART,
                        CART_DB,
                        s.slow_factor,
                        SimDuration::from_secs(s.fault_secs),
                    )
                },
                &mut sora,
            );
            report("slow-link", &result, &world, sora.frozen_periods())
        }),
        job("retry-storm", move || {
            let mut sora = sora_over_hpa(s, true);
            // Finite bandwidth on the timeout-guarded edge: resends aimed
            // at the crashed CartDB queue behind each other until the
            // bounded queue sheds them as `lost_saturated`.
            let network = base_network().edge(
                CART,
                CART_DB,
                EdgeParams::constant(SimDuration::from_micros(200))
                    .bandwidth(SimDuration::from_millis(3), SimDuration::from_millis(30))
                    .timeout(SimDuration::from_millis(250), 2),
            );
            let (result, world) = run_variant(
                s,
                network,
                |_| {
                    FaultSchedule::new().crash(
                        SimTime::from_secs(s.fault_at),
                        CART_DB,
                        Some(SimDuration::from_secs(s.restart_secs)),
                    )
                },
                &mut sora,
            );
            report("retry-storm", &result, &world, sora.frozen_periods())
        }),
        job("telemetry-reorder-guard", move || {
            let mut sora = sora_over_hpa(s, true);
            let (result, world) = run_variant(
                s,
                reordered_telemetry_network(s),
                |w| control_plane_schedule(s, w),
                &mut sora,
            );
            report(
                "telemetry-reorder-guard",
                &result,
                &world,
                sora.frozen_periods(),
            )
        }),
        job("telemetry-reorder-noguard", move || {
            let mut sora = sora_over_hpa(s, false);
            let (result, world) = run_variant(
                s,
                reordered_telemetry_network(s),
                |w| control_plane_schedule(s, w),
                &mut sora,
            );
            report(
                "telemetry-reorder-noguard",
                &result,
                &world,
                sora.frozen_periods(),
            )
        }),
    ]);
    let variants = outcome.results.clone();

    let mut table = Table::new(vec![
        "scenario",
        "completed",
        "goodput [req/s]",
        "SLO viol",
        "p99 [ms]",
        "net lost (rand/part/sat)",
        "retries/orphans",
        "dup traces",
        "frozen",
    ]);
    for v in &variants {
        table.row(vec![
            v.label.clone(),
            format!("{}", v.completed),
            format!("{:.0}", v.goodput_rps),
            format!("{}", v.slo_violations),
            format!("{:.0}", v.p99_ms),
            format!(
                "{} ({}/{}/{})",
                v.net.lost_total(),
                v.net.lost_random,
                v.net.lost_partitioned,
                v.net.lost_saturated
            ),
            format!("{}/{}", v.net.call_retries, v.net.orphaned_frames),
            format!("{}", v.telemetry_duplicates_dropped),
            format!("{}", v.frozen_periods),
        ]);
    }
    print_table("Network resilience — message-passing substrate", &table);

    let guard = &variants[3];
    let noguard = &variants[4];
    println!("\n== Net-resilience verdict ==");
    println!(
        "partition-heal: {} partition losses, {} call timeouts aborted",
        variants[0].net.lost_partitioned, variants[0].drop_breakdown.net_timed_out
    );
    println!(
        "retry-storm: {} saturated losses from {} resends",
        variants[2].net.lost_saturated, variants[2].net.call_retries
    );
    println!(
        "reordered telemetry: guard {} vs no-guard {} SLO violations \
         (guard froze {} periods; {} duplicate traces deduped)",
        guard.slo_violations,
        noguard.slo_violations,
        guard.frozen_periods,
        guard.telemetry_duplicates_dropped
    );
    let helps = guard.slo_violations < noguard.slo_violations;
    println!(
        "degradation guard under reordered telemetry {}",
        if helps {
            "reduces SLO violations"
        } else {
            "did NOT reduce SLO violations"
        }
    );

    let data = serde_json::json!({
        "setup": {
            "secs": s.secs,
            "fault_at": s.fault_at,
            "fault_secs": s.fault_secs,
            "slow_factor": s.slow_factor,
            "crash_at": s.crash_at,
            "restart_secs": s.restart_secs,
            "pressure_at": s.pressure_at,
            "pressure_secs": s.pressure_secs,
            "blackout_at": s.blackout_at,
            "blackout_secs": s.blackout_secs,
            "staleness_secs": s.staleness_secs,
            "min_window_samples": s.min_window_samples,
            "telemetry_jitter_ms": s.telemetry_jitter_ms,
            "telemetry_loss": s.telemetry_loss,
            "telemetry_dup": s.telemetry_dup,
            "sla_ms": SLA.as_millis_f64(),
            "seed": s.seed,
        },
        "variants": variants,
        "degradation_helps": helps,
    });
    if smoke {
        // The smoke check diffs stdout across --jobs settings; dump the
        // canonical data (the archive file also carries wall-clock perf,
        // which legitimately differs run to run).
        println!(
            "{}",
            serde_json::to_string_pretty(&data).expect("serialize")
        );
    }
    save_json_with_perf("BENCH_net_resilience", &data, &outcome.perf);
}
