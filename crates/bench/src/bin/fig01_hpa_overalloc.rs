//! Figure 1 — the motivating example: Kubernetes HPA scales the bottleneck
//! Catalogue service out, but the *over-allocated* per-replica database
//! connection pool multiplies with the replica count and floods
//! Catalogue-db, so response time keeps spiking. Sora adapts the pool.

use apps::{Scenario, ScenarioConfig, SockShop, SockShopParams, Watch};
use autoscalers::{HpaConfig, HpaController};
use microsim::WorldConfig;
use scg::LocalizeConfig;
use sim_core::{Dist, SimDuration, SimRng};
use sora_bench::{job, print_table, save_json_with_perf, Sweep, Table};
use sora_core::{
    Controller, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController,
};
use telemetry::ServiceId;
use workload::{Mix, RateCurve, TraceShape, UserPool};

const CATALOGUE: ServiceId = ServiceId(3);
const CATALOGUE_DB: ServiceId = ServiceId(4);

/// A Catalogue with a grossly over-allocated DB pool (60 conns/replica),
/// as a team might configure "to be safe".
fn shop() -> SockShop {
    SockShop::build_with_config(
        SockShopParams {
            catalogue_db_conns: 60,
            catalogue_db_csw: 0.05, // a contention-prone database engine
            ..Default::default()
        },
        WorldConfig {
            trace_sample_every: 5,
            ..Default::default()
        },
        SimRng::seed_from(11),
    )
}

fn run(with_sora: bool, secs: u64) -> apps::RunResult {
    let mut s = shop();
    // Dual phase: the sustained high phase reliably trips HPA's CPU rule,
    // mirroring Fig. 1's scale-out event at ~60 s.
    let curve = RateCurve::new(TraceShape::DualPhase, 3_000.0, SimDuration::from_secs(secs));
    let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(3));
    let watch = Watch {
        service: CATALOGUE,
        conns: Some((CATALOGUE, CATALOGUE_DB)),
    };
    let scenario = Scenario::new(
        ScenarioConfig {
            report_rtt: SimDuration::from_millis(400),
            ..Default::default()
        },
        pool,
        Mix::single(s.get_catalogue),
        watch,
    );
    let hpa = HpaController::new(
        CATALOGUE,
        HpaConfig {
            max_replicas: 6,
            ..Default::default()
        },
    );
    if with_sora {
        let registry = ResourceRegistry::new().with(
            SoftResource::ConnPool {
                caller: CATALOGUE,
                target: CATALOGUE_DB,
            },
            ResourceBounds { min: 2, max: 128 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(400),
                localize: LocalizeConfig {
                    min_on_path: 30,
                    ..Default::default()
                },
                ..Default::default()
            },
            registry,
            hpa,
        );
        scenario.run(&mut s.world, &mut sora)
    } else {
        let mut hpa = hpa;
        scenario.run(&mut s.world, &mut hpa as &mut dyn Controller)
    }
}

fn main() {
    let secs = if sora_bench::quick_mode() { 120 } else { 180 }; // Fig. 1 spans 180 s
    let outcome = Sweep::from_env().run(vec![
        job("hpa-only", move || run(false, secs)),
        job("hpa+sora", move || run(true, secs)),
    ]);
    let [hpa_res, sora_res]: [apps::RunResult; 2] = outcome.results.try_into().expect("two runs");

    let mut table = Table::new(vec![
        "t [s]",
        "HPA RT [ms]",
        "Sora RT [ms]",
        "HPA est. conns",
        "Sora est. conns",
        "HPA replicas",
        "Sora replicas",
    ]);
    for (h, s) in hpa_res.timeline.iter().zip(&sora_res.timeline).step_by(10) {
        let t = h.t_secs as usize;
        let rt = |r: &apps::RunResult| {
            r.rt_timeline
                .get(t.saturating_sub(1))
                .map_or(0.0, |&(_, v)| v)
        };
        table.row(vec![
            format!("{t}"),
            format!("{:.0}", rt(&hpa_res)),
            format!("{:.0}", rt(&sora_res)),
            format!("{}", h.conns_established),
            format!("{}", s.conns_established),
            format!("{}", h.replicas),
            format!("{}", s.replicas),
        ]);
    }
    print_table(
        "Fig. 1 — HPA scale-out with over-allocated DB pool vs Sora",
        &table,
    );
    println!(
        "p99: HPA {:.0} ms vs Sora {:.0} ms; goodput {:.0} vs {:.0} req/s",
        hpa_res.summary.p99_ms,
        sora_res.summary.p99_ms,
        hpa_res.summary.goodput_rps,
        sora_res.summary.goodput_rps
    );
    save_json_with_perf(
        "fig01_hpa_overalloc",
        &serde_json::json!({
            "hpa": { "timeline": hpa_res.timeline, "rt": hpa_res.rt_timeline,
                      "summary": hpa_res.summary },
            "sora": { "timeline": sora_res.timeline, "rt": sora_res.rt_timeline,
                       "summary": sora_res.summary },
        }),
        &outcome.perf,
    );
}
