//! Figure 4 — response-time distributions of the 4-core Cart under 30 vs
//! 80 threads, and the goodput-order reversal between a 150 ms and a 250 ms
//! threshold.
//!
//! The paper's semi-log histograms show the 80-thread pool concentrating
//! mass at lower latency (no accept-queue wait) while spreading a heavier
//! tail (sharing overhead); which allocation "wins" depends on where the
//! threshold cuts the two distributions.

use sim_core::{SimDuration, SimTime};
use sora_bench::{cart_run, job, print_table, save_json_with_perf, CartSetup, Sweep, Table};
use sora_core::NullController;
use workload::TraceShape;

const THRESHOLDS_MS: [u64; 6] = [25, 50, 100, 150, 250, 400];

fn histogram_for(threads: usize, secs: u64) -> (Vec<(f64, u64)>, [u64; 6], u64) {
    let setup = CartSetup {
        shape: TraceShape::Steady,
        max_users: 3_000.0,
        secs,
        params: apps::SockShopParams {
            cart_cores: 4,
            cart_threads: threads,
            ..Default::default()
        },
        report_rtt: SimDuration::from_millis(250),
        seed: 13,
    };
    let mut null = NullController;
    let (_, world) = cart_run(&setup, &mut null);
    let hist: Vec<(f64, u64)> = world
        .client()
        .histogram()
        .iter()
        .map(|(bound, count)| (bound.as_millis_f64(), count))
        .collect();
    let within = |ms: u64| world.client().goodput_count(SimDuration::from_millis(ms));
    let total = world.client().total();
    let _ = SimTime::ZERO;
    (hist, THRESHOLDS_MS.map(within), total)
}

fn main() {
    let secs = if sora_bench::quick_mode() { 60 } else { 180 };
    let outcome = Sweep::from_env().run(vec![
        job("cart-30-threads", move || histogram_for(30, secs)),
        job("cart-80-threads", move || histogram_for(80, secs)),
    ]);
    let mut results = outcome.results.into_iter();
    let (h30, g30, t30) = results.next().expect("30-thread run");
    let (h80, g80, t80) = results.next().expect("80-thread run");

    // Coarse console rendition of the semi-log histogram: counts per
    // decade-ish latency band.
    let bands = [
        5.0,
        10.0,
        25.0,
        50.0,
        100.0,
        150.0,
        250.0,
        400.0,
        1_000.0,
        f64::MAX,
    ];
    let in_band = |h: &[(f64, u64)], lo: f64, hi: f64| {
        h.iter()
            .filter(|&&(b, _)| b > lo && b <= hi)
            .map(|&(_, c)| c)
            .sum::<u64>()
    };
    let mut table = Table::new(vec!["RT band [ms]", "30 threads [#]", "80 threads [#]"]);
    let mut lo = 0.0;
    for &hi in &bands {
        let label = if hi == f64::MAX {
            format!(">{lo:.0}")
        } else {
            format!("{lo:.0}–{hi:.0}")
        };
        table.row(vec![
            label,
            format!("{}", in_band(&h30, lo, hi)),
            format!("{}", in_band(&h80, lo, hi)),
        ]);
        lo = hi;
    }
    print_table(
        "Fig. 4 — Cart response-time distribution, 30 vs 80 threads",
        &table,
    );

    let mut verdict = Table::new(vec![
        "threshold",
        "goodput 30 thr",
        "goodput 80 thr",
        "ratio 30/80",
    ]);
    for (i, ms) in THRESHOLDS_MS.into_iter().enumerate() {
        verdict.row(vec![
            format!("{ms} ms"),
            format!("{} / {}", g30[i], t30),
            format!("{} / {}", g80[i], t80),
            format!("{:.2}", g30[i] as f64 / g80[i].max(1) as f64),
        ]);
    }
    print_table("Fig. 4 — goodput order vs threshold", &verdict);
    println!(
        "paper's claim: the 30- vs 80-thread order depends on the threshold.\n\
         In this substrate the smaller pool dominates at every threshold under\n\
         egalitarian processor sharing, but the RATIO varies strongly with the\n\
         threshold — the distributions cross exactly as in the paper's Fig. 4\n\
         (see the band table above); EXPERIMENTS.md discusses the deviation."
    );

    save_json_with_perf(
        "fig04_rt_distribution",
        &serde_json::json!({
            "hist_30": h30, "hist_80": h80,
            "goodput_150_250_thr30": g30, "goodput_150_250_thr80": g80,
            "total_30": t30, "total_80": t80,
        }),
        &outcome.perf,
    );
}
