//! Ablations beyond the paper's tables (DESIGN.md §6): what each design
//! choice of the SCG/Sora stack contributes.
//!
//! 1. goodput (SCG) vs throughput (SCT) knee on the same recorded scatter;
//! 2. deadline propagation on/off;
//! 3. Kneedle polynomial degree sweep (the §3.3 sensitivity analysis);
//! 4. scatter window length sweep.

use autoscalers::{FirmConfig, FirmController};
use cluster::Millicores;
use scg::{LocalizeConfig, ScgConfig, ScgModel};
use sim_core::{SimDuration, SimTime};
use sora_bench::{
    cart_run, job, print_table, save_json_with_perf, CartSetup, PerfMetrics, Sweep, Table,
};
use sora_core::{
    EstimatorConfig, NullController, ResourceBounds, ResourceRegistry, SoftResource, SoraConfig,
    SoraController,
};
use telemetry::{build_scatter, build_scatter_throughput, ServiceId};
use workload::TraceShape;

const CART: ServiceId = ServiceId(1);

fn main() {
    let quick = sora_bench::quick_mode();
    let secs = if quick { 180 } else { 360 };
    let mut json = serde_json::Map::new();

    // Record one bursty run with a generous pool for the offline ablations.
    let setup = CartSetup {
        shape: TraceShape::LargeVariation,
        max_users: 2_600.0,
        secs,
        params: apps::SockShopParams {
            cart_cores: 4,
            cart_threads: 60,
            ..Default::default()
        },
        report_rtt: SimDuration::from_millis(250),
        seed: 71,
    };
    let sweep = Sweep::from_env();
    let record_outcome = sweep.run(vec![job("recorded-run", move || {
        let mut null = NullController;
        cart_run(&setup, &mut null).1
    })]);
    let world = record_outcome.results.into_iter().next().expect("one run");
    let pod = world.ready_replicas(CART)[0];
    let conc = world.concurrency_of(pod).expect("pod");
    let comp = world.completions_of(pod).expect("pod");
    let from = SimTime::from_secs(secs.saturating_sub(180));
    let to = SimTime::from_secs(secs);
    let interval = SimDuration::from_millis(100);

    // --- 1. SCG vs SCT on identical data -------------------------------
    let model = ScgModel::default();
    let tight = SimDuration::from_millis(20);
    let scg_pts = build_scatter(conc, comp, from, to, interval, tight);
    let sct_pts = build_scatter_throughput(conc, comp, from, to, interval);
    let scg_knee = model.estimate(&scg_pts).map(|e| e.optimal);
    let sct_knee = model.estimate(&sct_pts).map(|e| e.optimal);
    let mut t1 = Table::new(vec!["model", "knee"]);
    t1.row(vec!["SCG (goodput, 20 ms)".into(), format!("{scg_knee:?}")]);
    t1.row(vec!["SCT (throughput)".into(), format!("{sct_knee:?}")]);
    print_table("Ablation 1 — SCG vs SCT knee on the same window", &t1);
    println!("expected: SCT knee ≥ SCG knee (latency-blind over-allocation)");
    json.insert(
        "scg_vs_sct".into(),
        serde_json::json!({"scg": scg_knee, "sct": sct_knee}),
    );

    // --- 2. deadline propagation on/off (closed loop) -------------------
    let firm = || {
        FirmController::new(FirmConfig {
            services: vec![CART],
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            min_limit: Millicores::from_cores(1),
            max_limit: Millicores::from_cores(4),
            ..Default::default()
        })
    };
    let registry = || {
        ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: CART },
            ResourceBounds { min: 5, max: 200 },
        )
    };
    let run_with = move |propagate: bool| {
        let cfg = SoraConfig {
            sla: SimDuration::from_millis(400),
            localize: LocalizeConfig {
                min_on_path: 30,
                ..Default::default()
            },
            deadline_propagation: propagate,
            ..Default::default()
        };
        let mut sora = SoraController::sora(cfg, registry(), firm());
        let dyn_setup = CartSetup {
            shape: TraceShape::SteepTriPhase,
            secs,
            ..Default::default()
        };
        let (res, _) = cart_run(&dyn_setup, &mut sora);
        res.summary
    };
    let dp_outcome = sweep.run(vec![
        job("deadline-propagation-on", move || run_with(true)),
        job("deadline-propagation-off", move || run_with(false)),
    ]);
    let (with_dp, without_dp) = (dp_outcome.results[0], dp_outcome.results[1]);
    let mut t2 = Table::new(vec!["variant", "p99 [ms]", "goodput [req/s]"]);
    t2.row(vec![
        "deadline propagation ON".into(),
        format!("{:.0}", with_dp.p99_ms),
        format!("{:.0}", with_dp.goodput_rps),
    ]);
    t2.row(vec![
        "deadline propagation OFF".into(),
        format!("{:.0}", without_dp.p99_ms),
        format!("{:.0}", without_dp.goodput_rps),
    ]);
    print_table("Ablation 2 — deadline propagation", &t2);
    json.insert(
        "deadline_propagation".into(),
        serde_json::json!({
            "on": with_dp, "off": without_dp,
        }),
    );

    // --- 3. polynomial degree sweep -------------------------------------
    let mut t3 = Table::new(vec!["degree", "knee", "fit RMSE / range"]);
    let binned = model.aggregate(&scg_pts);
    let xs: Vec<f64> = binned.iter().map(|b| b.0).collect();
    let ys: Vec<f64> = binned.iter().map(|b| b.1).collect();
    let range = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - ys.iter().copied().fold(f64::INFINITY, f64::min);
    for degree in [2usize, 3, 5, 6, 8, 10, 12] {
        let m = ScgModel::new(ScgConfig {
            min_degree: degree,
            max_degree: degree,
            rmse_tolerance: f64::INFINITY, // force this exact degree
            ..ScgConfig::default()
        });
        let knee = m.estimate(&scg_pts).map(|e| e.optimal);
        let rmse = scg::PolyFit::fit(&xs, &ys, degree).map(|f| f.rmse(&xs, &ys) / range.max(1e-9));
        t3.row(vec![
            degree.to_string(),
            format!("{knee:?}"),
            rmse.map_or("fit failed".into(), |r| format!("{r:.3}")),
        ]);
    }
    print_table("Ablation 3 — Kneedle polynomial degree (§3.3)", &t3);
    println!("expected: very low degrees underfit (missing/shifted knee), 5–8 stable,");
    println!("          very high degrees chase noise");

    // --- 4. window length sweep ------------------------------------------
    let mut t4 = Table::new(vec!["window [s]", "knee"]);
    for win in [15u64, 30, 60, 120, 180] {
        let f = SimTime::from_secs(secs.saturating_sub(win));
        let pts = build_scatter(conc, comp, f, to, interval, tight);
        let knee = model.estimate(&pts).map(|e| e.optimal);
        t4.row(vec![win.to_string(), format!("{knee:?}")]);
    }
    print_table("Ablation 4 — scatter window length", &t4);
    println!("expected: very short windows lack concurrency coverage (no knee);");
    println!("          60 s+ converges — the paper's 60 s window choice (§4.1)");

    let _ = EstimatorConfig::default();
    save_json_with_perf(
        "ablations",
        &serde_json::Value::Object(json),
        &PerfMetrics::merged(&[record_outcome.perf, dp_outcome.perf]),
    );
}
