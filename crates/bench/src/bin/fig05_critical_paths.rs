//! Figure 5 — the execution path of a Catalogue request and its *dynamic*
//! critical path.
//!
//! Not a measurement figure in the paper, but the phenomenon behind it is
//! measurable: under runtime contention, either the Cart branch (critical
//! path 1) or the Catalogue branch (critical path 2) of the same request
//! type dominates. This binary runs the Catalogue mix under bursty load and
//! reports how often each path shape won, plus each service's PCC with the
//! end-to-end response time — the exact inputs of the critical-service
//! localisation phase.

use apps::{Scenario, ScenarioConfig, SockShop, SockShopParams, Watch};
use sim_core::{Dist, SimDuration, SimRng};
use sora_bench::{job, print_table, save_json_with_perf, Sweep, Table};
use sora_core::NullController;
use std::collections::BTreeMap;
use telemetry::{critical_path, latency_breakdown, per_service_stats};
use workload::{Mix, RateCurve, TraceShape, UserPool};

fn main() {
    let secs = if sora_bench::quick_mode() { 60 } else { 180 };
    // A single run, still submitted through the sweep harness so the perf
    // record (wall-clock, jobs) lands in the results JSON like everywhere
    // else; one job degrades to inline in-thread execution.
    let outcome = Sweep::from_env().run(vec![job("catalogue-mix", move || {
        let mut shop = SockShop::build_with_config(
            SockShopParams::default(),
            microsim::WorldConfig {
                trace_sample_every: 2,
                ..Default::default()
            },
            SimRng::seed_from(19),
        );
        let curve = RateCurve::new(
            TraceShape::LargeVariation,
            2_000.0,
            SimDuration::from_secs(secs),
        );
        let pool = UserPool::new(curve, Dist::exponential_ms(2_500.0), SimRng::seed_from(20));
        let scenario = Scenario::new(
            ScenarioConfig::default(),
            pool,
            Mix::single(shop.get_catalogue),
            Watch {
                service: shop.catalogue,
                conns: None,
            },
        );
        let mut ctl = NullController;
        let _ = scenario.run(&mut shop.world, &mut ctl);
        shop
    })]);
    let shop = outcome.results.into_iter().next().expect("one run");

    // Tally the critical-path shapes over the retained traces.
    let mut shapes: BTreeMap<String, u64> = BTreeMap::new();
    for trace in shop.world.warehouse().iter() {
        let path = critical_path(trace);
        let name: Vec<&str> = path
            .iter()
            .map(|h| shop.world.service_name(h.service))
            .collect();
        *shapes.entry(name.join(" → ")).or_insert(0) += 1;
    }
    let total: u64 = shapes.values().sum();
    let mut table = Table::new(vec!["critical path", "traces", "share"]);
    let mut rows: Vec<(&String, &u64)> = shapes.iter().collect();
    rows.sort_by_key(|&(_, c)| std::cmp::Reverse(*c));
    for (path, count) in &rows {
        table.row(vec![
            (*path).clone(),
            count.to_string(),
            format!("{:.1}%", 100.0 * **count as f64 / total.max(1) as f64),
        ]);
    }
    print_table(
        "Fig. 5 — dynamic critical paths of the Catalogue request",
        &table,
    );

    let stats = per_service_stats(shop.world.warehouse().iter());
    let mut pcc = Table::new(vec!["service", "on-path traces", "PCC(PT, RT)"]);
    for idx in 0..shop.world.service_count() {
        let svc = telemetry::ServiceId(idx as u32);
        if stats.on_path_count(svc) == 0 {
            continue;
        }
        pcc.row(vec![
            shop.world.service_name(svc).to_string(),
            stats.on_path_count(svc).to_string(),
            stats.pcc(svc).map_or("n/a".into(), |r| format!("{r:.3}")),
        ]);
    }
    print_table(
        "Per-service correlation with end-to-end RT (localisation input)",
        &pcc,
    );
    println!(
        "candidate critical service: {:?}",
        stats
            .candidate_critical_service()
            .map(|s| shop.world.service_name(s).to_string())
    );
    println!("paper's point: both branches appear at runtime — the critical path is dynamic");

    // Bonus diagnosis: where each service's latency goes (queue vs local vs
    // downstream) — the evidence soft-resource adaptation acts on.
    let breakdown = latency_breakdown(shop.world.warehouse().iter());
    let mut bd = Table::new(vec![
        "service",
        "spans",
        "queue [ms]",
        "local [ms]",
        "downstream [ms]",
        "dominant",
    ]);
    for (svc, b) in &breakdown {
        bd.row(vec![
            shop.world.service_name(*svc).to_string(),
            b.spans().to_string(),
            format!("{:.2}", b.queue_wait_ms.mean()),
            format!("{:.2}", b.self_time_ms.mean()),
            format!("{:.2}", b.downstream_wait_ms.mean()),
            b.dominant().to_string(),
        ]);
    }
    print_table("Per-service latency breakdown (tProf-style)", &bd);
    save_json_with_perf(
        "fig05_critical_paths",
        &serde_json::json!(shapes
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()),
        &outcome.perf,
    );
}
