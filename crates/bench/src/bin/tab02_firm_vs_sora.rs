//! Table 2 — tail response time (p95/p99) and average goodput, FIRM vs
//! FIRM + Sora, under all six real-world bursty workload traces.

use autoscalers::{FirmConfig, FirmController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::SimDuration;
use sora_bench::{cart_run, print_table, save_json, trace_secs, CartSetup, Table};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use telemetry::ServiceId;
use workload::TraceShape;

const CART: ServiceId = ServiceId(1);

fn firm_config() -> FirmConfig {
    FirmConfig {
        services: vec![CART],
        localize: LocalizeConfig { min_on_path: 30, ..Default::default() },
        min_limit: Millicores::from_cores(1),
        max_limit: Millicores::from_cores(4),
        ..Default::default()
    }
}

fn main() {
    let mut table = Table::new(vec![
        "trace",
        "p95 FIRM/Sora [ms]",
        "p99 FIRM/Sora [ms]",
        "goodput-400ms FIRM/Sora [req/s]",
    ]);
    let mut rows = Vec::new();
    let mut p99_ratios = Vec::new();
    for shape in TraceShape::ALL {
        let setup = CartSetup { shape, secs: trace_secs(), ..Default::default() };

        let mut firm = FirmController::new(firm_config());
        let (firm_res, _) = cart_run(&setup, &mut firm);

        let registry = ResourceRegistry::new().with(
            SoftResource::ThreadPool { service: CART },
            ResourceBounds { min: 5, max: 200 },
        );
        let mut sora = SoraController::sora(
            SoraConfig {
                sla: SimDuration::from_millis(400),
                localize: LocalizeConfig { min_on_path: 30, ..Default::default() },
                ..Default::default()
            },
            registry,
            FirmController::new(firm_config()),
        );
        let (sora_res, _) = cart_run(&setup, &mut sora);

        table.row(vec![
            shape.to_string(),
            format!("{:.0} / {:.0}", firm_res.summary.p95_ms, sora_res.summary.p95_ms),
            format!("{:.0} / {:.0}", firm_res.summary.p99_ms, sora_res.summary.p99_ms),
            format!(
                "{:.0} / {:.0}",
                firm_res.summary.goodput_rps, sora_res.summary.goodput_rps
            ),
        ]);
        p99_ratios.push(firm_res.summary.p99_ms / sora_res.summary.p99_ms.max(1.0));
        rows.push(serde_json::json!({
            "trace": shape.name(),
            "firm": firm_res.summary,
            "sora": sora_res.summary,
        }));
    }
    print_table("Table 2 — FIRM vs FIRM+Sora, six bursty traces", &table);
    let avg: f64 = p99_ratios.iter().sum::<f64>() / p99_ratios.len() as f64;
    let max = p99_ratios.iter().copied().fold(0.0f64, f64::max);
    println!(
        "p99 reduction: mean {avg:.2}x, max {max:.2}x (paper: ~2.2x mean, up to 2.5x)"
    );
    save_json("tab02_firm_vs_sora", &serde_json::json!(rows));
}
