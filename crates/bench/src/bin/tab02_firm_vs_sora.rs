//! Table 2 — tail response time (p95/p99) and average goodput, FIRM vs
//! FIRM + Sora, under all six real-world bursty workload traces.
//!
//! The twelve runs (six traces × two controller stacks) are independent and
//! fan out across the [`Sweep`] harness; table rows are assembled from the
//! index-ordered results, so the output is byte-identical at any job count.

use autoscalers::{FirmConfig, FirmController};
use cluster::Millicores;
use scg::LocalizeConfig;
use sim_core::SimDuration;
use sora_bench::{
    cart_run, job, print_table, save_json_with_perf, trace_secs, CartSetup, Sweep, Table,
};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use telemetry::ServiceId;
use workload::TraceShape;

const CART: ServiceId = ServiceId(1);

fn firm_config() -> FirmConfig {
    FirmConfig {
        services: vec![CART],
        localize: LocalizeConfig {
            min_on_path: 30,
            ..Default::default()
        },
        min_limit: Millicores::from_cores(1),
        max_limit: Millicores::from_cores(4),
        ..Default::default()
    }
}

fn main() {
    let secs = trace_secs();
    let mut jobs = Vec::new();
    for shape in TraceShape::ALL {
        let setup = CartSetup {
            shape,
            secs,
            ..Default::default()
        };
        jobs.push(job(format!("firm/{shape}"), move || {
            let mut firm = FirmController::new(firm_config());
            cart_run(&setup, &mut firm).0.summary
        }));
        jobs.push(job(format!("sora/{shape}"), move || {
            let registry = ResourceRegistry::new().with(
                SoftResource::ThreadPool { service: CART },
                ResourceBounds { min: 5, max: 200 },
            );
            let mut sora = SoraController::sora(
                SoraConfig {
                    sla: SimDuration::from_millis(400),
                    localize: LocalizeConfig {
                        min_on_path: 30,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                registry,
                FirmController::new(firm_config()),
            );
            cart_run(&setup, &mut sora).0.summary
        }));
    }
    let outcome = Sweep::from_env().run(jobs);

    let mut table = Table::new(vec![
        "trace",
        "p95 FIRM/Sora [ms]",
        "p99 FIRM/Sora [ms]",
        "goodput-400ms FIRM/Sora [req/s]",
    ]);
    let mut rows = Vec::new();
    let mut p99_ratios = Vec::new();
    for (shape, pair) in TraceShape::ALL.into_iter().zip(outcome.results.chunks(2)) {
        let (firm, sora) = (&pair[0], &pair[1]);
        table.row(vec![
            shape.to_string(),
            format!("{:.0} / {:.0}", firm.p95_ms, sora.p95_ms),
            format!("{:.0} / {:.0}", firm.p99_ms, sora.p99_ms),
            format!("{:.0} / {:.0}", firm.goodput_rps, sora.goodput_rps),
        ]);
        p99_ratios.push(firm.p99_ms / sora.p99_ms.max(1.0));
        rows.push(serde_json::json!({
            "trace": shape.name(),
            "firm": firm,
            "sora": sora,
        }));
    }
    print_table("Table 2 — FIRM vs FIRM+Sora, six bursty traces", &table);
    let avg: f64 = p99_ratios.iter().sum::<f64>() / p99_ratios.len() as f64;
    let max = p99_ratios.iter().copied().fold(0.0f64, f64::max);
    println!("p99 reduction: mean {avg:.2}x, max {max:.2}x (paper: ~2.2x mean, up to 2.5x)");
    save_json_with_perf(
        "tab02_firm_vs_sora",
        &serde_json::json!(rows),
        &outcome.perf,
    );
}
