//! Parallel scaling of the sharded world engine (DESIGN §14).
//!
//! One 5000-service sock-shop-like world is driven through identical
//! open-loop request schedules under shard counts 1, 2, 4, … — shards = 1
//! being the engine family's sequential baseline — and every run must
//! produce **identical counters** (completions, drops, events, spans, the
//! p99 bit pattern): the conservative window protocol is deterministic by
//! construction, and this binary asserts it at full scale.
//!
//! Two speedups are reported per shard count:
//!
//! * `wall_speedup` — measured events/sec against the shards = 1 run. Only
//!   meaningful on a multi-core host; asserted ≥ 1.5 at 4 shards when the
//!   host exposes ≥ 4 cores.
//! * `critical_path_speedup` — `events / critical_path_events`, where the
//!   critical path is the sum over lookahead windows of the *maximum*
//!   per-shard dispatch count (the makespan with one core per shard).
//!   This is the parallelism the window schedule itself exposes,
//!   independent of host core count, and is asserted ≥ 1.5 at 4 shards.
//!
//! `--smoke` runs a small audited world (500 services) under a canned
//! fault schedule — a replica crash with restart, a CPU-pressure window
//! and a telemetry blackout — for the shard count given by `--shards N`,
//! and prints a canonical digest (counters, drop breakdown, fault log and
//! an order-sensitive hash of the completion and drop streams) that
//! `scripts/check.sh` byte-diffs across shard counts.

use microsim::{BlackoutMode, FaultSchedule, WorldConfig};
use serde::Serialize;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use sora_bench::{print_table, save_json_with_perf, PerfTimer, Table};
use telemetry::ServiceId;
use topo::TopoParams;

use cluster::NodeId;

/// One workload point: everything that defines the simulation except the
/// shard count, so runs differ *only* in partitioning.
#[derive(Clone, Copy)]
struct Point {
    services: usize,
    requests: u64,
    sim_secs: u64,
    faults: bool,
    seed: u64,
}

impl Point {
    fn full() -> Point {
        Point {
            services: 5000,
            requests: 120_000,
            sim_secs: 12,
            faults: false,
            seed: 0x5048,
        }
    }

    fn smoke() -> Point {
        Point {
            services: 500,
            requests: 12_000,
            sim_secs: 6,
            faults: true,
            seed: 0x5048,
        }
    }
}

/// Shard-count-invariant observables of one run. `PartialEq` equality
/// across shard counts is the bench's headline assertion.
#[derive(Clone, PartialEq, Eq, Serialize)]
struct SimCounters {
    completed: u64,
    dropped: u64,
    events: u64,
    requests: u64,
    spans: u64,
    p99_ms_bits: u64,
    completions_fnv: u64,
    drops_fnv: u64,
}

#[derive(Serialize)]
struct EngineRun {
    shards: usize,
    counters: SimCounters,
    critical_path_events: u64,
    critical_path_speedup: f64,
    events_per_sec: f64,
    wall_secs: f64,
}

/// FNV-1a over a byte stream; order-sensitive, so equal hashes mean equal
/// streams in equal order.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

struct RunOutput {
    counters: SimCounters,
    critical_path_events: u64,
    wall_secs: f64,
    drop_breakdown: String,
    fault_log: Vec<String>,
}

fn fault_schedule() -> FaultSchedule {
    // Mid-tier crash (layer 1 starts at service id 1 for depth-5 shapes)
    // restarted 300 ms later, a half-speed CPU window on the first node,
    // and a lagging-collector blackout — all three coordinator barrier
    // kinds the sharded engine supports.
    FaultSchedule::new()
        .crash(
            SimTime::from_millis(900),
            ServiceId(1),
            Some(SimDuration::from_millis(300)),
        )
        .cpu_pressure(
            SimTime::from_millis(1_500),
            NodeId(0),
            0.5,
            SimDuration::from_millis(400),
        )
        .telemetry_blackout(
            SimTime::from_millis(2_200),
            BlackoutMode::Lag,
            SimDuration::from_millis(400),
        )
}

fn run_point(p: Point, shards: usize) -> RunOutput {
    let params = TopoParams {
        timeout: Some(SimDuration::from_secs(5)),
        ..TopoParams::sock_shop_like(p.services)
    };
    let config = WorldConfig {
        trace_sample_every: 1024,
        replica_startup: Dist::constant_us(0),
        ..WorldConfig::default()
    };
    let mut t = topo::build(&params, config, SimRng::seed_from(p.seed));
    t.world
        .enable_sharding_with_plan(&t.shard_plan(shards))
        .expect("fresh world accepts sharding");
    if p.faults {
        t.world
            .install_faults(fault_schedule())
            .expect("canned schedule validates");
    }

    // Open-loop injection, all scheduled up front: arrival times and the
    // request-type mix depend only on (requests, sim_secs), never on the
    // shard count, so every run sees the same offered load.
    let span_nanos = p.sim_secs * 1_000_000_000;
    for i in 0..p.requests {
        let at = SimTime::from_nanos(span_nanos * i / p.requests);
        let rt = t.request_types[(i % t.request_types.len() as u64) as usize];
        t.world.inject_at(at, rt);
    }

    let wall = std::time::Instant::now();
    let mut done = Vec::new();
    t.world.run_until_into(
        SimTime::from_secs(p.sim_secs) + SimDuration::from_secs(30),
        &mut done,
    );
    let wall_secs = wall.elapsed().as_secs_f64();
    assert!(t.world.is_quiescent(), "drain window left work in flight");

    #[cfg(feature = "audit")]
    assert_eq!(
        t.world.audit().total(),
        0,
        "audit violations under sharding: {}",
        t.world.audit().summary()
    );

    let mut comp_fnv = Fnv::new();
    for c in &done {
        comp_fnv.write_u64(c.issued.as_nanos());
        comp_fnv.write_u64(c.completed.as_nanos());
        comp_fnv.write(format!("{:?}|{:?}", c.request, c.rtype).as_bytes());
    }
    let mut drop_fnv = Fnv::new();
    for (req, reason) in t.world.drain_dropped() {
        drop_fnv.write(format!("{req:?}|{reason:?}").as_bytes());
    }

    let client = t.world.client();
    let counters = SimCounters {
        completed: client.total(),
        dropped: t.world.dropped(),
        events: t.world.events_dispatched(),
        requests: t.world.requests_injected(),
        spans: t.world.spans_created(),
        p99_ms_bits: client
            .percentile(99.0)
            .map_or(0.0, |d| d.as_millis_f64())
            .to_bits(),
        completions_fnv: comp_fnv.0,
        drops_fnv: drop_fnv.0,
    };
    RunOutput {
        counters,
        critical_path_events: t.world.critical_path_events(),
        wall_secs,
        drop_breakdown: format!("{:?}", t.world.drop_breakdown()),
        fault_log: t
            .world
            .fault_log()
            .iter()
            .map(|(at, line)| format!("{}ns {line}", at.as_nanos()))
            .collect(),
    }
}

/// Canonical smoke digest: every line is shard-count invariant, so
/// `check.sh` can byte-diff `--shards 1` against `--shards 4`.
fn print_digest(r: &RunOutput) {
    let c = &r.counters;
    println!("completed={}", c.completed);
    println!("dropped={}", c.dropped);
    println!("events={}", c.events);
    println!("requests={}", c.requests);
    println!("spans={}", c.spans);
    println!("p99_ms_bits={}", c.p99_ms_bits);
    println!("completions_fnv={:016x}", c.completions_fnv);
    println!("drops_fnv={:016x}", c.drops_fnv);
    println!("drop_breakdown={}", r.drop_breakdown);
    for line in &r.fault_log {
        println!("fault: {line}");
    }
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shards: usize = arg_value("--shards")
        .map(|v| v.parse().expect("--shards takes an integer"))
        .unwrap_or(1);

    if smoke {
        // Single audited configuration; digest on stdout, timing on stderr.
        let r = run_point(Point::smoke(), shards);
        eprintln!(
            "[par_scale] smoke shards={shards}: {:.2}s wall, {} events",
            r.wall_secs, r.counters.events
        );
        print_digest(&r);
        return;
    }

    let timer = PerfTimer::new();
    let p = Point::full();
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let shard_counts: &[usize] = if host_cores >= 8 {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4]
    };

    let mut runs: Vec<EngineRun> = Vec::new();
    let mut table = Table::new(vec![
        "shards",
        "events/s",
        "wall s",
        "wall x",
        "crit-path x",
        "identical",
    ]);
    for &n in shard_counts {
        let r = run_point(p, n);
        let identical = runs.is_empty() || r.counters == runs[0].counters;
        assert!(
            identical,
            "shards={n} diverged from the sequential baseline"
        );
        if n == 1 {
            // With one shard every window's max is its total: the critical
            // path must be the whole event stream.
            assert_eq!(
                r.critical_path_events, r.counters.events,
                "critical path must equal total events at shards=1"
            );
        }
        let events_per_sec = r.counters.events as f64 / r.wall_secs.max(1e-9);
        let wall_speedup = if runs.is_empty() {
            1.0
        } else {
            events_per_sec / runs[0].events_per_sec
        };
        let crit_speedup = r.counters.events as f64 / (r.critical_path_events as f64).max(1.0);
        table.row(vec![
            n.to_string(),
            format!("{events_per_sec:.0}"),
            format!("{:.2}", r.wall_secs),
            format!("{wall_speedup:.2}"),
            format!("{crit_speedup:.2}"),
            identical.to_string(),
        ]);
        runs.push(EngineRun {
            shards: n,
            counters: r.counters,
            critical_path_events: r.critical_path_events,
            critical_path_speedup: crit_speedup,
            events_per_sec,
            wall_secs: r.wall_secs,
        });
    }
    print_table("par_scale: sharded engine scaling (5000 services)", &table);

    let at4 = runs
        .iter()
        .find(|r| r.shards == 4)
        .expect("4-shard run always present");
    assert!(
        at4.critical_path_speedup >= 1.5,
        "window schedule exposes only {:.2}x parallelism at 4 shards",
        at4.critical_path_speedup
    );
    let wall_speedup_at_4 = at4.events_per_sec / runs[0].events_per_sec;
    if host_cores >= 4 {
        assert!(
            wall_speedup_at_4 >= 1.5,
            "measured only {wall_speedup_at_4:.2}x events/sec at 4 shards on {host_cores} cores"
        );
    } else {
        eprintln!(
            "[par_scale] host has {host_cores} core(s); wall-clock speedup \
             ({wall_speedup_at_4:.2}x) not asserted, critical-path speedup \
             ({:.2}x) is",
            at4.critical_path_speedup
        );
    }

    let runs_len = runs.len();
    let payload = serde_json::json!({
        "services": p.services,
        "requests": p.requests,
        "sim_secs": p.sim_secs,
        "host_cores": host_cores,
        "shard_counts": shard_counts,
        "engines_identical": true,
        "critical_path_speedup_at_4": at4.critical_path_speedup,
        "wall_speedup_at_4": wall_speedup_at_4,
        "runs": runs,
    });
    save_json_with_perf("BENCH_par_scale", &payload, &timer.finish(1, runs_len));
}
