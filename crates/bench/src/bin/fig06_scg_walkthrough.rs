//! Figure 6 — the SCG model's four-phase workflow, walked through verbosely
//! on live data.
//!
//! Not a measurement figure; this binary narrates one control decision the
//! way Fig. 6 diagrams it: ① critical-service localisation, ② RT-threshold
//! propagation, ③ metrics collection, ④ estimation.

use sim_core::{SimDuration, SimRng, SimTime};
use sora_bench::{cart_run, job, print_table, CartSetup, Sweep, Table};
use sora_core::{Monitor, NullController};
use telemetry::build_scatter;
use workload::TraceShape;

fn main() {
    let secs = if sora_bench::quick_mode() { 90 } else { 180 };
    let sla = SimDuration::from_millis(400);
    let setup = CartSetup {
        shape: TraceShape::LargeVariation,
        max_users: 3_500.0,
        secs,
        params: apps::SockShopParams {
            cart_cores: 4,
            cart_threads: 40,
            ..Default::default()
        },
        report_rtt: sla,
        seed: 97,
    };
    let outcome = Sweep::from_env().run(vec![job("walkthrough-run", move || {
        let mut null = NullController;
        cart_run(&setup, &mut null).1
    })]);
    let mut world = outcome.results.into_iter().next().expect("one run");
    let now = SimTime::from_secs(secs);
    let _ = SimRng::seed_from(0);

    // ① Critical-service localisation.
    let mut monitor = Monitor::new(SimDuration::from_secs(60));
    let obs = monitor.observe(&mut world, now);
    let mut t1 = Table::new(vec!["service", "CPU util", "PCC(PT, RT)", "on-path traces"]);
    for idx in 0..world.service_count() {
        let svc = telemetry::ServiceId(idx as u32);
        if obs.path_stats.on_path_count(svc) == 0 {
            continue;
        }
        t1.row(vec![
            world.service_name(svc).to_string(),
            format!("{:.2}", obs.utilization.get(&svc).copied().unwrap_or(0.0)),
            obs.path_stats
                .pcc(svc)
                .map_or("n/a".into(), |r| format!("{r:.3}")),
            obs.path_stats.on_path_count(svc).to_string(),
        ]);
    }
    print_table("Phase ① — critical service localisation", &t1);
    let critical = obs
        .critical_service(&scg::LocalizeConfig {
            min_on_path: 30,
            ..Default::default()
        })
        .expect("a loaded system has a critical service");
    println!("  -> critical service: {}", world.service_name(critical));

    // ② RT-threshold propagation.
    let upstream = obs
        .path_stats
        .mean_upstream_pt(critical)
        .unwrap_or(SimDuration::ZERO);
    let threshold = scg::propagate_deadline(sla, upstream);
    println!(
        "\nPhase ② — deadline propagation: SLA {sla} − upstream PT {upstream} \
         = RTT {threshold} for {}",
        world.service_name(critical)
    );

    // ③ Metrics collection: the <Q, GP> pairs at 100 ms over 60 s.
    let pod = world.ready_replicas(critical)[0];
    let pts = build_scatter(
        world.concurrency_of(pod).expect("live replica"),
        world.completions_of(pod).expect("live replica"),
        now - SimDuration::from_secs(60),
        now,
        SimDuration::from_millis(100),
        threshold,
    );
    let model = scg::ScgModel::default();
    let bins = model.aggregate(&pts);
    println!(
        "\nPhase ③ — metrics collection: {} samples → {} bins",
        pts.len(),
        bins.len()
    );
    let mut t3 = Table::new(vec!["Q", "mean goodput [req/s]"]);
    for &(q, gp) in bins.iter().take(12) {
        t3.row(vec![format!("{q:.0}"), format!("{gp:.0}")]);
    }
    print_table("scatter (first 12 bins)", &t3);

    // ④ Estimation.
    let est = model.estimate(&pts);
    match &est {
        Some(est) => println!(
            "\nPhase ④ — estimation: knee at Q = {} (goodput {:.0} req/s, \
             polynomial degree {}) → recommend a {}-wide pool",
            est.optimal, est.rate_at_optimal, est.degree, est.optimal
        ),
        None => println!(
            "\nPhase ④ — estimation: no trustworthy knee in this window \
             (the framework would explore upward)"
        ),
    }
    sora_bench::save_json_with_perf(
        "fig06_scg_walkthrough",
        &serde_json::json!({
            "critical_service": world.service_name(critical),
            "threshold_ms": threshold.as_millis_f64(),
            "scatter_points": pts.len(),
            "knee": est.map(|e| e.optimal),
        }),
        &outcome.perf,
    );
}
