//! Criterion benchmarks of the estimation pipeline: ring-served streaming
//! aggregation versus the retained reference-scan oracle, plus an
//! end-to-end control-loop run.
//!
//! The pipeline under test is the per-tick hot path of the adapter: build
//! the trailing 60 s scatter at 100 ms buckets, bin it, and run the SCG
//! knee estimate. The `_ring` variant reads the O(1)-ingest bucket rings
//! through reusable scratch (zero steady-state allocation); the `_scan`
//! variant rebuilds every bucket from raw history the way the
//! pre-streaming implementation did. Both produce bit-identical points —
//! the delta is pure aggregation cost.
//!
//! Requires the `reference-scan` feature on `telemetry` (enabled by this
//! crate's dev-dependencies).

use criterion::{criterion_group, criterion_main, Criterion};
use scg::ScgModel;
use sim_core::{SimDuration, SimRng, SimTime};
use sora_bench::{cart_run, CartSetup};
use sora_core::{ResourceBounds, ResourceRegistry, SoftResource, SoraConfig, SoraController};
use std::hint::black_box;
use telemetry::{
    build_scatter_into, build_scatter_scan, CompletionLog, ConcurrencyTracker, ScatterScratch,
    ServiceId,
};
use workload::TraceShape;

/// One minute of irregular enter/leave/record traffic at ~500
/// completions/second, the load a busy replica's samplers carry when the
/// controller asks for its 60 s window.
fn loaded_samplers() -> (ConcurrencyTracker, CompletionLog) {
    let mut conc = ConcurrencyTracker::new(SimDuration::from_secs(120));
    let mut log = CompletionLog::new(SimDuration::from_secs(120));
    let mut rng = SimRng::seed_from(9);
    let mut level = 0u32;
    for ms in 0..60_000u64 {
        // Unaligned sub-millisecond jitter so bucket boundaries are crossed
        // mid-segment, as in a real run.
        let at = SimTime::from_nanos(ms * 1_000_000 + rng.next_u64() % 900_000);
        if ms % 2 == 0 {
            conc.enter(at);
            level += 1;
        } else if level > 0 {
            conc.leave(at);
            level -= 1;
            log.record(
                at,
                SimDuration::from_micros(2_000 + (rng.next_u64() % 8_000)),
            );
        }
    }
    (conc, log)
}

const WINDOW: (SimTime, SimTime) = (SimTime::ZERO, SimTime::from_secs(60));
const INTERVAL: SimDuration = SimDuration::from_millis(100);

fn bench_pipeline(c: &mut Criterion) {
    let (conc, log) = loaded_samplers();
    let model = ScgModel::default();
    let threshold = Some(SimDuration::from_millis(8));
    let (from, to) = WINDOW;

    // Ring path: the shipping implementation. Scratch persists across
    // iterations exactly as the estimator holds it across control ticks.
    let mut scratch = ScatterScratch::default();
    let mut points = Vec::new();
    let mut bins = Vec::new();
    c.bench_function("estimation_pipeline_ring", |b| {
        b.iter(|| {
            points.clear();
            build_scatter_into(
                &conc,
                &log,
                from,
                to,
                INTERVAL,
                threshold,
                &mut scratch,
                &mut points,
            );
            model.aggregate_counted_into(&points, &mut bins);
            black_box(model.estimate_binned(&bins))
        })
    });

    // Reference-scan path: rebuild every bucket from raw history, then the
    // original BTreeMap-backed estimate. This is what each control tick
    // cost before the streaming layer.
    c.bench_function("estimation_pipeline_scan", |b| {
        b.iter(|| {
            let pts = build_scatter_scan(&conc, &log, from, to, INTERVAL, threshold);
            black_box(model.estimate(&pts))
        })
    });
}

fn bench_control_loop(c: &mut Criterion) {
    // A miniature Cart run under the full Sora controller: every tick
    // exercises deadline propagation, scatter construction over all
    // replicas, SCG estimation, and actuation.
    let setup = CartSetup {
        shape: TraceShape::Steady,
        max_users: 120.0,
        secs: 5,
        ..CartSetup::default()
    };
    let cart = ServiceId(1);
    c.bench_function("sora_control_loop_5s_120users", |b| {
        b.iter(|| {
            let registry = ResourceRegistry::new().with(
                SoftResource::ThreadPool { service: cart },
                ResourceBounds { min: 5, max: 200 },
            );
            let config = SoraConfig {
                sla: SimDuration::from_millis(250),
                ..Default::default()
            };
            let mut ctl = SoraController::sora(config, registry, sora_core::NullController);
            let (result, _world) = cart_run(black_box(&setup), &mut ctl);
            black_box(result.summary.completed)
        })
    });
}

criterion_group!(benches, bench_pipeline, bench_control_loop);
criterion_main!(benches);
