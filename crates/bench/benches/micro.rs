//! Criterion micro-benchmarks of the reproduction's hot paths: the event
//! queue, the processor-sharing CPU, Kneedle + polynomial fitting, scatter
//! construction, critical-path analysis, and end-to-end world throughput.
//!
//! These quantify the §6 scalability discussion: the paper reports ≤ 5 %
//! CPU overhead and ~50 ms of computation for critical-service extraction;
//! `scg_estimate` and `critical_path_stats` are the equivalents here.

use cluster::{Millicores, PsCpu};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use microsim::{Behavior, ServiceSpec, World, WorldConfig};
use scg::{Kneedle, ScgModel};
use sim_core::{Dist, EventQueue, SimDuration, SimRng, SimTime};
use sora_bench::{cart_run, CartSetup};
use sora_core::NullController;
use std::hint::black_box;
use telemetry::{
    build_scatter, per_service_stats, ChildCall, CompletionLog, ConcurrencyTracker, ReplicaId,
    RequestId, RequestTypeId, ScatterPoint, ServiceId, Span, SpanId, Trace, TraceWarehouse,
};
use workload::TraceShape;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::seed_from(1);
                (0..10_000u64)
                    .map(|_| SimTime::from_nanos(rng.next_u64() % 1_000_000))
                    .collect::<Vec<_>>()
            },
            |times| {
                // Schedule the whole batch (the clock is still at zero, so
                // any order is legal), then drain it.
                let mut q = EventQueue::new();
                for (i, &at) in times.iter().enumerate() {
                    q.schedule(at, i);
                }
                let mut n = 0usize;
                while let Some((_, e)) = q.pop() {
                    n += black_box(e) & 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ps_cpu(c: &mut Criterion) {
    c.bench_function("ps_cpu_1k_jobs", |b| {
        b.iter(|| {
            let mut cpu = PsCpu::new(Millicores::from_cores(4), 0.03);
            let mut t = SimTime::ZERO;
            for i in 0..1_000u64 {
                cpu.add(t, SimDuration::from_micros(500 + i % 100));
                if let Some((done, _)) = cpu.next_completion() {
                    cpu.advance(done);
                    black_box(cpu.take_finished());
                    t = done;
                }
            }
            black_box(cpu.active())
        })
    });
}

fn synthetic_scatter() -> Vec<ScatterPoint> {
    let mut rng = SimRng::seed_from(3);
    (0..600)
        .map(|_| {
            let q = rng.f64() * 30.0;
            let rate = 1_000.0 * (1.0 - (-q / 5.0).exp()) + rng.f64() * 30.0;
            ScatterPoint { q, rate }
        })
        .collect()
}

fn bench_scg(c: &mut Criterion) {
    let pts = synthetic_scatter();
    let model = ScgModel::default();
    c.bench_function("scg_estimate_600pts", |b| {
        b.iter(|| black_box(model.estimate(black_box(&pts))))
    });

    let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| 1.0 - (-x / 30.0).exp()).collect();
    c.bench_function("kneedle_detect_200pts", |b| {
        b.iter(|| black_box(Kneedle::default().detect(black_box(&xs), black_box(&ys))))
    });
}

fn bench_scatter_build(c: &mut Criterion) {
    // One minute of 100 ms samples at ~500 completions/second.
    let mut conc = ConcurrencyTracker::new(SimDuration::from_secs(120));
    let mut log = CompletionLog::new(SimDuration::from_secs(120));
    let mut rng = SimRng::seed_from(9);
    let mut level = 0u32;
    for ms in 0..60_000u64 {
        if ms % 2 == 0 {
            conc.enter(SimTime::from_millis(ms));
            level += 1;
        }
        if level > 0 && ms % 2 == 1 {
            conc.leave(SimTime::from_millis(ms));
            level -= 1;
            log.record(
                SimTime::from_millis(ms),
                SimDuration::from_micros(2_000 + (rng.next_u64() % 8_000)),
            );
        }
    }
    c.bench_function("build_scatter_60s_window", |b| {
        b.iter(|| {
            black_box(build_scatter(
                &conc,
                &log,
                SimTime::ZERO,
                SimTime::from_secs(60),
                SimDuration::from_millis(100),
                SimDuration::from_millis(8),
            ))
        })
    });
}

fn chain_trace(i: u64) -> Trace {
    let t = |ms: u64| SimTime::from_millis(ms);
    let root = Span {
        id: SpanId(i * 2),
        request: RequestId(i),
        service: ServiceId(0),
        replica: ReplicaId(0),
        parent: None,
        arrival: t(0),
        service_start: t(0),
        departure: t(20 + i % 7),
        children: vec![ChildCall {
            service: ServiceId(1),
            start: t(2),
            end: t(15 + i % 7),
        }],
    };
    let child = Span {
        id: SpanId(i * 2 + 1),
        parent: Some(root.id),
        service: ServiceId(1),
        arrival: t(2),
        service_start: t(2),
        departure: t(15 + i % 7),
        children: vec![],
        ..root.clone()
    };
    Trace {
        request: RequestId(i),
        request_type: RequestTypeId(0),
        spans: vec![root, child],
    }
}

fn bench_critical_path(c: &mut Criterion) {
    let traces: Vec<Trace> = (0..1_000).map(chain_trace).collect();
    c.bench_function("critical_path_stats_1k_traces", |b| {
        b.iter(|| black_box(per_service_stats(black_box(&traces))))
    });
}

/// A warehouse holding `n` two-span chain traces spread over one minute.
fn loaded_warehouse(n: u64) -> TraceWarehouse {
    let mut w = TraceWarehouse::new(SimDuration::from_secs(600), 1);
    for i in 0..n {
        let mut t = chain_trace(i);
        // Spread completions across the minute and touch services 0..8 so
        // `iter_touching` sees both matching and non-matching traces.
        let done = SimTime::from_millis(i * 60_000 / n.max(1) + 30);
        t.spans[0].departure = done;
        t.spans[1].service = ServiceId((i % 8) as u32 + 1);
        w.push(t);
    }
    w
}

fn bench_warehouse_queries(c: &mut Criterion) {
    let w = loaded_warehouse(5_000);
    let (from, to) = (SimTime::from_secs(20), SimTime::from_secs(50));
    c.bench_function("warehouse_iter_window_5k", |b| {
        b.iter(|| black_box(w.iter_window(from, to).count()))
    });
    // 1 in 8 traces touch the queried service: the ingest-time presence
    // mask lets the other 7/8 skip their span scan entirely.
    c.bench_function("warehouse_iter_touching_5k", |b| {
        b.iter(|| black_box(w.iter_touching(ServiceId(3), from, to).count()))
    });
    c.bench_function("warehouse_iter_touching_absent_5k", |b| {
        b.iter(|| black_box(w.iter_touching(ServiceId(40), from, to).count()))
    });
}

fn bench_cart_end_to_end(c: &mut Criterion) {
    // A miniature §5.2 Cart run through the full Sock Shop topology —
    // workload driver, scenario loop, telemetry and warehouse included.
    let setup = CartSetup {
        shape: TraceShape::Steady,
        max_users: 120.0,
        secs: 5,
        ..CartSetup::default()
    };
    c.bench_function("cart_end_to_end_5s_120users", |b| {
        b.iter(|| {
            let mut null = NullController;
            let (result, _world) = cart_run(black_box(&setup), &mut null);
            black_box(result.summary.completed)
        })
    });
}

fn bench_world_throughput(c: &mut Criterion) {
    c.bench_function("world_simulate_5k_requests", |b| {
        b.iter_batched(
            || {
                let cfg = WorldConfig {
                    trace_sample_every: 10,
                    ..WorldConfig::default()
                };
                let mut w = World::new(cfg, SimRng::seed_from(5));
                let rt = RequestTypeId(0);
                let db = ServiceId(1);
                let front = w.add_service(ServiceSpec::new("front").threads(32).on(
                    rt,
                    Behavior::tier(Dist::exponential_ms(1.0), db, Dist::constant_ms(1)),
                ));
                w.add_service(
                    ServiceSpec::new("db")
                        .threads(32)
                        .on(rt, Behavior::leaf(Dist::exponential_ms(2.0))),
                );
                let rt = w.add_request_type("r", front);
                for svc in [front, db] {
                    let pod = w.add_replica(svc).unwrap();
                    w.make_ready(pod);
                }
                for i in 0..5_000u64 {
                    w.inject_at(SimTime::from_nanos(i * 400_000), rt);
                }
                w
            },
            |mut w| {
                let done = w.run_until(SimTime::from_secs(60));
                black_box(done.len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_ps_cpu,
    bench_scg,
    bench_scatter_build,
    bench_critical_path,
    bench_warehouse_queries,
    bench_world_throughput,
    bench_cart_end_to_end
);
criterion_main!(benches);
