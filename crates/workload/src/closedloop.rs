//! Closed-loop RUBBoS-style user pool with a time-varying population.

use crate::retry::{RetryDecision, RetryState};
use crate::{RateCurve, RetryPolicy, RetryStats};
use sim_core::{Dist, SimRng, SimTime, TimerWheel};

/// What the driver should do next, according to the user pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserAction {
    /// Inject one request at the given instant on behalf of user `user`.
    Send {
        /// When to inject.
        at: SimTime,
        /// The sending user (echo it back in [`UserPool::on_completion`]).
        user: u64,
    },
    /// Nothing to send before `until`; advance the simulation.
    Idle {
        /// Re-consult the pool at this instant.
        until: SimTime,
    },
    /// The run is over.
    Finished,
}

/// A closed-loop user pool: each user cycles *think → send → wait for
/// response → think*, and the number of active users follows a
/// [`RateCurve`] (peak interpreted as maximum users), re-evaluated on a
/// fixed control grid. This matches how the paper scales its RUBBoS
/// workload generator with the bursty traces.
///
/// The pool is simulator-agnostic: the driver asks for the [`next_action`]
/// (a send or an idle period), injects sends into its simulator, and calls
/// [`on_completion`] when a user's request finishes.
///
/// [`next_action`]: UserPool::next_action
/// [`on_completion`]: UserPool::on_completion
///
/// # Example
///
/// ```
/// use workload::{RateCurve, TraceShape, UserAction, UserPool};
/// use sim_core::{Dist, SimDuration, SimRng, SimTime};
///
/// let curve = RateCurve::new(TraceShape::DualPhase, 10.0, SimDuration::from_secs(60));
/// let mut pool = UserPool::new(curve, Dist::exponential_ms(100.0), SimRng::seed_from(1));
/// match pool.next_action(SimTime::ZERO) {
///     UserAction::Send { user, at } => pool.on_completion(at, user),
///     other => panic!("expected an initial send, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct UserPool {
    curve: RateCurve,
    think: Dist,
    rng: SimRng,
    /// Pending sends, ordered by `(time, user)`: the same hierarchical
    /// timing wheel that backs `sim_core::EventQueue`, keyed by user id so
    /// tie-breaking matches the binary heap it replaced byte-for-byte.
    pending: TimerWheel<()>,
    /// Users currently waiting for a response.
    in_flight: u64,
    /// Users alive (thinking + in flight + pending send).
    active: u64,
    next_user: u64,
    /// Next instant the population target is re-evaluated.
    next_control: SimTime,
    /// Optional retry policy state; `None` keeps the RUBBoS default of
    /// think-then-resend on drops.
    retry: Option<RetryState>,
    /// Retry-budget conservation violations, reconciled after every retry
    /// decision. Audit-only state; never serialized.
    #[cfg(feature = "audit")]
    audit_sink: sim_core::audit::CountingSink,
}

impl UserPool {
    /// Control-grid spacing for population re-evaluation (1 s).
    const CONTROL_SECS: u64 = 1;

    /// Creates a pool; `curve.peak()` is the maximum user count and `think`
    /// the per-user think-time distribution.
    pub fn new(curve: RateCurve, think: Dist, rng: SimRng) -> Self {
        UserPool {
            curve,
            think,
            rng,
            pending: TimerWheel::new(),
            in_flight: 0,
            active: 0,
            next_user: 0,
            next_control: SimTime::ZERO,
            retry: None,
            #[cfg(feature = "audit")]
            audit_sink: sim_core::audit::CountingSink::new(),
        }
    }

    /// Attaches a [`RetryPolicy`]: dropped requests are re-sent after a
    /// jittered exponential backoff (skipping the think time) until the
    /// attempt bound or the retry budget runs out. The jitter stream is
    /// split off the pool's seed, so attaching a policy does not perturb
    /// think-time sampling in fault-free runs.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        let rng = self.rng.split("retry");
        self.retry = Some(RetryState::new(policy, rng));
        self
    }

    /// Retry counters accumulated so far (all zero when no policy is set).
    pub fn retry_stats(&self) -> RetryStats {
        self.retry.as_ref().map(|r| r.stats()).unwrap_or_default()
    }

    /// Retry-budget conservation violations observed so far.
    #[cfg(feature = "audit")]
    pub fn audit(&self) -> &sim_core::audit::CountingSink {
        &self.audit_sink
    }

    /// Users currently alive.
    pub fn active_users(&self) -> u64 {
        self.active
    }

    /// Requests currently awaiting a response.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    fn end(&self) -> SimTime {
        SimTime::ZERO + self.curve.duration()
    }

    /// Re-evaluates the population target at `now`, spawning or retiring
    /// users. Spawned users send their first request after one think time
    /// (desynchronising them); retiring removes users lazily from the
    /// pending-send queue.
    fn rebalance(&mut self, now: SimTime) {
        if now < self.next_control {
            return;
        }
        self.next_control =
            SimTime::from_nanos(now.as_nanos() + SimTime::from_secs(Self::CONTROL_SECS).as_nanos());
        let target = self.curve.value_at(now).round() as u64;
        while self.active < target {
            let user = self.next_user;
            self.next_user += 1;
            self.active += 1;
            let delay = self.think.sample(&mut self.rng);
            self.pending.schedule(now + delay, user, ());
        }
        // Retire surplus users that are queued to send (never interrupt an
        // in-flight request).
        while self.active > target {
            match self.pending.pop() {
                Some(_) => self.active -= 1,
                None => break,
            }
        }
    }

    /// The driver's next step at simulated instant `now`.
    pub fn next_action(&mut self, now: SimTime) -> UserAction {
        if now >= self.end() {
            return UserAction::Finished;
        }
        self.rebalance(now);
        let limit = self.next_control.min(self.end());
        match self.pending.pop_before(limit) {
            Some((at, user, ())) => {
                self.in_flight += 1;
                UserAction::Send {
                    at: at.max(now),
                    user,
                }
            }
            None => UserAction::Idle { until: limit },
        }
    }

    /// Returns the user to the thinking state: they send again after one
    /// think time (if the run is still on), or leave the pool otherwise.
    fn recycle(&mut self, now: SimTime, user: u64) {
        debug_assert!(self.in_flight > 0, "completion without a send");
        self.in_flight = self.in_flight.saturating_sub(1);
        if now >= self.end() {
            self.active = self.active.saturating_sub(1);
            return;
        }
        let delay = self.think.sample(&mut self.rng);
        self.pending.schedule(now + delay, user, ());
    }

    /// Reports that `user`'s request finished at `now`; the user thinks and
    /// then sends again (if the run is still on and the user was not
    /// retired meanwhile).
    pub fn on_completion(&mut self, now: SimTime, user: u64) {
        if let Some(retry) = self.retry.as_mut() {
            retry.on_success(user);
            #[cfg(feature = "audit")]
            retry.audit_into(now.as_nanos(), &mut self.audit_sink);
        }
        self.recycle(now, user);
    }

    /// Reports that `user`'s request was dropped (no response will come).
    ///
    /// With a [`RetryPolicy`] attached the user re-sends after a jittered
    /// exponential backoff — unless the attempt bound or retry budget says
    /// to give up, in which case (and always, without a policy) they retry
    /// after a full think time, as RUBBoS clients do.
    pub fn on_drop(&mut self, now: SimTime, user: u64) {
        let decision = self.retry.as_mut().map(|r| r.on_drop(user));
        #[cfg(feature = "audit")]
        if let Some(retry) = self.retry.as_ref() {
            retry.audit_into(now.as_nanos(), &mut self.audit_sink);
        }
        match decision {
            Some(RetryDecision::Retry(backoff)) => {
                debug_assert!(self.in_flight > 0, "drop without a send");
                self.in_flight = self.in_flight.saturating_sub(1);
                if now >= self.end() {
                    self.active = self.active.saturating_sub(1);
                    return;
                }
                self.pending.schedule(now + backoff, user, ());
            }
            Some(RetryDecision::GiveUp) | None => self.recycle(now, user),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RetryPolicy, TraceShape};
    use sim_core::SimDuration;

    fn pool(peak: f64, secs: u64) -> UserPool {
        let curve = RateCurve::new(TraceShape::DualPhase, peak, SimDuration::from_secs(secs));
        UserPool::new(curve, Dist::exponential_ms(50.0), SimRng::seed_from(3))
    }

    /// Drives the pool against an instant-response "simulator".
    fn drive_instant_responses(mut p: UserPool) -> Vec<SimTime> {
        let mut sends = Vec::new();
        let mut now = SimTime::ZERO;
        loop {
            match p.next_action(now) {
                UserAction::Send { at, user } => {
                    sends.push(at);
                    now = at;
                    p.on_completion(at, user); // zero service time
                }
                UserAction::Idle { until } => now = until,
                UserAction::Finished => return sends,
            }
        }
    }

    #[test]
    fn population_follows_curve() {
        let mut p = pool(100.0, 60);
        p.rebalance(SimTime::ZERO);
        let low = p.active_users();
        assert!((30..=40).contains(&low), "dual-phase low plateau: {low}");
        p.next_control = SimTime::from_secs(55);
        p.rebalance(SimTime::from_secs(55));
        let high = p.active_users();
        assert!(high > 90, "dual-phase high plateau: {high}");
    }

    #[test]
    fn sends_occur_and_increase_in_second_phase() {
        let sends = drive_instant_responses(pool(50.0, 60));
        assert!(
            sends.len() > 1_000,
            "closed loop should cycle: {}",
            sends.len()
        );
        let first_half = sends
            .iter()
            .filter(|t| **t < SimTime::from_secs(30))
            .count();
        let second_half = sends.len() - first_half;
        assert!(
            second_half as f64 > 1.5 * first_half as f64,
            "high phase sends ({second_half}) should exceed low phase ({first_half})"
        );
    }

    #[test]
    fn finished_after_duration() {
        let mut p = pool(10.0, 5);
        assert_eq!(p.next_action(SimTime::from_secs(5)), UserAction::Finished);
    }

    #[test]
    fn completions_recycle_users() {
        let mut p = pool(10.0, 60);
        let (at, user) = loop {
            match p.next_action(SimTime::ZERO) {
                UserAction::Send { at, user } => break (at, user),
                UserAction::Idle { until } => {
                    assert!(until > SimTime::ZERO);
                    // keep polling at the idle boundary
                    match p.next_action(until) {
                        UserAction::Send { at, user } => break (at, user),
                        _ => continue,
                    }
                }
                UserAction::Finished => panic!("should not finish"),
            }
        };
        assert_eq!(p.in_flight(), 1);
        p.on_completion(at, user);
        assert_eq!(p.in_flight(), 0);
    }

    /// Polls until the pool emits a send.
    fn first_send(p: &mut UserPool) -> (SimTime, u64) {
        let mut now = SimTime::ZERO;
        loop {
            match p.next_action(now) {
                UserAction::Send { at, user } => return (at, user),
                UserAction::Idle { until } => now = until,
                UserAction::Finished => panic!("should not finish"),
            }
        }
    }

    #[test]
    fn retry_resends_after_backoff_not_think_time() {
        let policy = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let mut p = pool(10.0, 60).with_retry(policy);
        let (at, user) = first_send(&mut p);
        p.on_drop(at, user);
        assert_eq!(p.retry_stats().attempts, 1);
        assert_eq!(p.in_flight(), 0);
        let (resend, _, _) = p
            .pending
            .iter()
            .find(|(_, who, _)| *who == user)
            .expect("retry pending");
        assert_eq!(
            resend,
            at + policy.base_backoff,
            "exact backoff, no think draw"
        );
    }

    #[test]
    fn exhausted_retries_fall_back_to_think_and_resend() {
        let mut p = pool(10.0, 60).with_retry(RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        });
        let (at, user) = first_send(&mut p);
        p.on_drop(at, user);
        assert_eq!(p.retry_stats().gave_up, 1);
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.active_users(), p.pending.len() as u64, "user recycled");
    }

    #[test]
    fn retry_policy_leaves_fault_free_runs_untouched() {
        let baseline = drive_instant_responses(pool(50.0, 60));
        let with_retry = drive_instant_responses(pool(50.0, 60).with_retry(RetryPolicy::default()));
        assert_eq!(baseline, with_retry, "no drops, no divergence");
    }
}
