//! The six bursty trace shapes of the paper's Table 2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalised bursty-workload shape: load fraction (0..=1) as a function
/// of run progress (0..=1).
///
/// These encode the six real-world traces of Gandhi et al. that the paper
/// evaluates under (Table 2). Shapes are piecewise-linear renditions of the
/// published curves; what matters for reproducing the paper is where the
/// surges sit and how steep they are, not the exact sample values.
///
/// # Example
///
/// ```
/// use workload::TraceShape;
/// let s = TraceShape::SteepTriPhase;
/// // Quiet at the start, surging in the first steep phase.
/// assert!(s.level_at(0.05) < 0.5);
/// assert!(s.level_at(0.45) > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceShape {
    /// Repeated large swings between low and peak load.
    LargeVariation,
    /// Fast small-period oscillation.
    QuickVarying,
    /// One slow rise and fall.
    SlowlyVarying,
    /// Mostly flat with one tall spike.
    BigSpike,
    /// A low plateau followed by a high plateau.
    DualPhase,
    /// Three phases with steep transitions (two surges), as in Fig. 10.
    SteepTriPhase,
    /// Constant full load — not one of the paper's traces; used by the
    /// parameter-sweep experiments (Figs. 3, 9) that hold the workload
    /// fixed while a pool size is varied. Excluded from [`TraceShape::ALL`].
    Steady,
}

impl TraceShape {
    /// All six shapes, in the paper's Table 2 order.
    pub const ALL: [TraceShape; 6] = [
        TraceShape::LargeVariation,
        TraceShape::QuickVarying,
        TraceShape::SlowlyVarying,
        TraceShape::BigSpike,
        TraceShape::DualPhase,
        TraceShape::SteepTriPhase,
    ];

    /// The load fraction at run progress `frac` (clamped to 0..=1).
    /// Always within `(0, 1]`.
    pub fn level_at(self, frac: f64) -> f64 {
        let x = frac.clamp(0.0, 1.0);
        match self {
            TraceShape::Steady => 1.0,
            TraceShape::QuickVarying => {
                // Triangle wave, 8 periods, between 0.35 and 1.0.
                let period = 1.0 / 8.0;
                let phase = (x % period) / period;
                let tri = if phase < 0.5 {
                    phase * 2.0
                } else {
                    2.0 - phase * 2.0
                };
                0.35 + 0.65 * tri
            }
            _ => piecewise(self.control_points(), x),
        }
    }

    fn control_points(self) -> &'static [(f64, f64)] {
        match self {
            TraceShape::LargeVariation => &[
                (0.00, 0.50),
                (0.10, 0.90),
                (0.20, 0.35),
                (0.25, 0.40),
                (0.32, 1.00),
                (0.45, 0.40),
                (0.55, 0.95),
                (0.65, 0.30),
                (0.72, 0.95),
                (0.80, 1.00),
                (0.90, 0.45),
                (1.00, 0.70),
            ],
            TraceShape::QuickVarying | TraceShape::Steady => &[],
            TraceShape::SlowlyVarying => &[
                (0.00, 0.40),
                (0.25, 0.70),
                (0.50, 1.00),
                (0.75, 0.60),
                (1.00, 0.40),
            ],
            TraceShape::BigSpike => &[
                (0.00, 0.40),
                (0.40, 0.45),
                (0.46, 1.00),
                (0.54, 1.00),
                (0.60, 0.45),
                (1.00, 0.40),
            ],
            TraceShape::DualPhase => &[
                (0.00, 0.35),
                (0.44, 0.40),
                (0.50, 0.90),
                (0.95, 1.00),
                (1.00, 0.90),
            ],
            TraceShape::SteepTriPhase => &[
                (0.00, 0.35),
                (0.30, 0.40),
                (0.37, 1.00),
                (0.50, 1.00),
                (0.57, 0.45),
                (0.64, 0.45),
                (0.67, 0.95),
                (0.83, 0.95),
                (0.86, 0.40),
                (1.00, 0.35),
            ],
        }
    }

    /// The paper's short name for the trace.
    pub fn name(self) -> &'static str {
        match self {
            TraceShape::LargeVariation => "Large Variation",
            TraceShape::QuickVarying => "Quick Varying",
            TraceShape::SlowlyVarying => "Slowly Varying",
            TraceShape::BigSpike => "Big Spike",
            TraceShape::DualPhase => "Dual Phase",
            TraceShape::SteepTriPhase => "Steep Tri Phase",
            TraceShape::Steady => "Steady",
        }
    }
}

impl fmt::Display for TraceShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn piecewise(points: &[(f64, f64)], x: f64) -> f64 {
    debug_assert!(points.len() >= 2);
    let mut prev = points[0];
    for &p in &points[1..] {
        if x <= p.0 {
            let span = p.0 - prev.0;
            if span <= 0.0 {
                return p.1;
            }
            let w = (x - prev.0) / span;
            return prev.1 + w * (p.1 - prev.1);
        }
        prev = p;
    }
    points.last().expect("non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_shapes_stay_in_unit_range() {
        for shape in TraceShape::ALL {
            for i in 0..=1000 {
                let v = shape.level_at(i as f64 / 1000.0);
                assert!((0.0..=1.0).contains(&v), "{shape} at {i}: {v}");
                assert!(v >= 0.25, "{shape} never goes fully idle: {v}");
            }
        }
    }

    #[test]
    fn every_shape_reaches_near_peak() {
        for shape in TraceShape::ALL {
            let peak = (0..=1000)
                .map(|i| shape.level_at(i as f64 / 1000.0))
                .fold(0.0f64, f64::max);
            assert!(peak > 0.95, "{shape} peak {peak}");
        }
    }

    #[test]
    fn steep_tri_phase_has_two_surges() {
        let s = TraceShape::SteepTriPhase;
        assert!(s.level_at(0.45) > 0.9, "first surge");
        assert!(s.level_at(0.61) < 0.55, "valley between surges");
        assert!(s.level_at(0.75) > 0.9, "second surge");
    }

    #[test]
    fn quick_varying_oscillates() {
        let s = TraceShape::QuickVarying;
        let flips = (1..200)
            .filter(|&i| {
                let a = s.level_at((i - 1) as f64 / 200.0);
                let b = s.level_at(i as f64 / 200.0);
                (a < 0.5) != (b < 0.5)
            })
            .count();
        assert!(flips >= 8, "expected many oscillations, saw {flips}");
    }

    #[test]
    fn big_spike_is_flat_except_spike() {
        let s = TraceShape::BigSpike;
        assert!(s.level_at(0.2) < 0.5);
        assert!(s.level_at(0.5) > 0.95);
        assert!(s.level_at(0.8) < 0.5);
    }

    #[test]
    fn steady_is_flat_and_not_in_all() {
        for i in 0..=10 {
            assert_eq!(TraceShape::Steady.level_at(i as f64 / 10.0), 1.0);
        }
        assert!(!TraceShape::ALL.contains(&TraceShape::Steady));
    }

    #[test]
    fn display_matches_table2_names() {
        assert_eq!(TraceShape::DualPhase.to_string(), "Dual Phase");
        assert_eq!(TraceShape::ALL.len(), 6);
    }

    proptest! {
        /// Input outside [0,1] clamps instead of extrapolating.
        #[test]
        fn prop_clamped(frac in -10.0f64..10.0) {
            for shape in TraceShape::ALL {
                let v = shape.level_at(frac);
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
