//! Open-loop non-homogeneous Poisson arrivals via thinning.

use crate::RateCurve;
use sim_core::{SimDuration, SimRng, SimTime};

/// An open-loop arrival process whose instantaneous rate follows a
/// [`RateCurve`] (requests per second), generated with Lewis–Shedler
/// thinning: candidate arrivals are drawn from a homogeneous Poisson
/// process at the curve's peak rate and accepted with probability
/// `rate(t) / peak`.
///
/// Implements [`Iterator`], yielding arrival instants in increasing order
/// until the curve's duration is exhausted.
///
/// # Example
///
/// ```
/// use workload::{NhppArrivals, RateCurve, TraceShape};
/// use sim_core::{SimDuration, SimRng};
///
/// let curve = RateCurve::new(TraceShape::SlowlyVarying, 100.0,
///                            SimDuration::from_secs(60));
/// let arrivals: Vec<_> = NhppArrivals::new(curve, SimRng::seed_from(1)).collect();
/// // ~60 s × avg(40..100 rps) → thousands of arrivals.
/// assert!(arrivals.len() > 2_000);
/// assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct NhppArrivals {
    curve: RateCurve,
    rng: SimRng,
    cursor: SimTime,
}

impl NhppArrivals {
    /// Creates the process starting at time zero.
    pub fn new(curve: RateCurve, rng: SimRng) -> Self {
        NhppArrivals {
            curve,
            rng,
            cursor: SimTime::ZERO,
        }
    }

    /// Creates the process starting at `start` (e.g. to resume mid-run).
    pub fn starting_at(curve: RateCurve, rng: SimRng, start: SimTime) -> Self {
        NhppArrivals {
            curve,
            rng,
            cursor: start,
        }
    }
}

impl Iterator for NhppArrivals {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        let peak = self.curve.max_value();
        let end = SimTime::ZERO + self.curve.duration();
        loop {
            // Exponential gap at the majorant rate.
            let u: f64 = self.rng.f64();
            let gap_secs = -(1.0 - u).ln() / peak;
            let candidate = self.cursor + SimDuration::from_secs_f64(gap_secs);
            if candidate >= end {
                self.cursor = end;
                return None;
            }
            self.cursor = candidate;
            let accept_p = self.curve.value_at(candidate) / peak;
            if self.rng.chance(accept_p.clamp(0.0, 1.0)) {
                return Some(candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceShape;

    fn arrivals(shape: TraceShape, peak: f64, secs: u64, seed: u64) -> Vec<SimTime> {
        let curve = RateCurve::new(shape, peak, SimDuration::from_secs(secs));
        NhppArrivals::new(curve, SimRng::seed_from(seed)).collect()
    }

    #[test]
    fn rate_tracks_the_curve() {
        let xs = arrivals(TraceShape::BigSpike, 1000.0, 100, 42);
        // Count arrivals in the flat region vs the spike.
        let in_range = |from: u64, to: u64| {
            xs.iter()
                .filter(|t| **t >= SimTime::from_secs(from) && **t < SimTime::from_secs(to))
                .count() as f64
                / (to - from) as f64
        };
        let flat = in_range(5, 35);
        let spike = in_range(47, 53);
        assert!(
            spike / flat > 1.8,
            "spike rate ({spike}/s) should dwarf flat rate ({flat}/s)"
        );
        // Flat region sits near 0.4 × peak.
        assert!(
            (flat - 420.0).abs() < 60.0,
            "flat ≈ 400–450 rps, got {flat}"
        );
    }

    #[test]
    fn total_count_matches_integral() {
        let xs = arrivals(TraceShape::SlowlyVarying, 500.0, 200, 7);
        // Integral of the slow wave ≈ 0.675 average level.
        let expected = 0.675 * 500.0 * 200.0;
        let got = xs.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let xs = arrivals(TraceShape::QuickVarying, 200.0, 60, 3);
        assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        assert!(xs.iter().all(|t| *t < SimTime::from_secs(60)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = arrivals(TraceShape::LargeVariation, 300.0, 30, 9);
        let b = arrivals(TraceShape::LargeVariation, 300.0, 30, 9);
        let c = arrivals(TraceShape::LargeVariation, 300.0, 30, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn starting_at_skips_prefix() {
        let curve = RateCurve::new(TraceShape::DualPhase, 100.0, SimDuration::from_secs(60));
        let xs: Vec<_> =
            NhppArrivals::starting_at(curve, SimRng::seed_from(1), SimTime::from_secs(50))
                .collect();
        assert!(xs.iter().all(|t| *t >= SimTime::from_secs(50)));
        assert!(!xs.is_empty());
    }
}
