//! Workload generation for the Sora reproduction.
//!
//! The paper drives its benchmarks with the RUBBoS workload generator and
//! six real-world bursty workload traces from Gandhi et al. (the paper's
//! reference 17; Table 2:
//! *Large Variation*, *Quick Varying*, *Slowly Varying*, *Big Spike*,
//! *Dual Phase*, *Steep Tri Phase*), each scaled to a maximum number of
//! concurrent users over a 12-minute run.
//!
//! Those traces are characterised publicly by shape, not by raw samples, so
//! this crate encodes each shape as a normalised load curve
//! ([`TraceShape`]) and scales it with [`RateCurve`]. Two generators turn a
//! curve into arrivals:
//!
//! * [`NhppArrivals`] — an open-loop non-homogeneous Poisson process
//!   (thinning algorithm), matching the paper's "requests follow a Poisson
//!   distribution" setup;
//! * [`UserPool`] — a closed-loop RUBBoS-style user pool with think times,
//!   whose population follows the trace curve.
//!
//! [`Mix`] samples request types by weight, and supports mid-run mix
//! switches (the §5.3 "request type change" state drift).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod closedloop;
mod curve;
mod mix;
mod openloop;
mod record;
mod retry;
mod shapes;

pub use closedloop::{UserAction, UserPool};
pub use curve::RateCurve;
pub use mix::Mix;
pub use openloop::NhppArrivals;
pub use record::{ArrivalRecord, WorkloadTrace};
pub use retry::{RetryPolicy, RetryStats};
pub use shapes::TraceShape;
