//! Client retry policy: bounded retries, exponential backoff with
//! deterministic jitter, and a retry budget.
//!
//! When a closed-loop user's request is dropped (replica failure, refusal,
//! timeout — and, with a network installed, message loss or a call-level
//! network timeout), a real client library retries — but naive unbounded
//! retries amplify failures into retry storms. The policy is
//! drop-reason-agnostic, so `NetLost`/`NetTimedOut` drops are retryable
//! like any other; the `net_resilience` retry-storm scenario leans on
//! exactly this to pile resends into a bandwidth-bounded link. [`RetryPolicy`] models the standard
//! production discipline:
//!
//! * **bounded attempts**: at most `max_retries` per logical request;
//! * **exponential backoff**: the `k`-th retry waits
//!   `base_backoff · 2^(k−1)` capped at `max_backoff`, with multiplicative
//!   jitter drawn from a dedicated [`SimRng`] stream (so retry timing never
//!   perturbs think-time sampling, keeping fault-free runs byte-identical);
//! * **retry budget**: a token bucket earns `budget_ratio` tokens per
//!   successful completion (capped at `budget_cap`) and spends one per
//!   retry, so a mass failure exhausts the budget and the storm becomes
//!   *observable* in [`RetryStats::budget_denied`] instead of hiding as
//!   load.
//!
//! [`UserPool::with_retry`](crate::UserPool::with_retry) attaches a policy
//! to the closed loop; without one, the pool keeps its RUBBoS default of
//! think-then-resend.

use serde::Serialize;
use sim_core::{SimDuration, SimRng};
use std::collections::HashMap;

/// A bounded, budgeted exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries per logical request before the client gives up.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff.
    pub max_backoff: SimDuration,
    /// Multiplicative jitter half-width: each backoff is scaled by a
    /// deterministic draw from `[1 − jitter_frac, 1 + jitter_frac]`.
    pub jitter_frac: f64,
    /// Budget tokens earned per successful completion.
    pub budget_ratio: f64,
    /// Maximum banked budget tokens (also the initial balance).
    pub budget_cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(5),
            jitter_frac: 0.2,
            budget_ratio: 0.1,
            budget_cap: 50.0,
        }
    }
}

/// Counters exposing retry behaviour (and retry storms) to reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RetryStats {
    /// Retries actually scheduled.
    pub attempts: u64,
    /// Logical requests abandoned after `max_retries` failures.
    pub gave_up: u64,
    /// Retries suppressed because the budget was exhausted — the
    /// "observable retry storm" signal.
    pub budget_denied: u64,
}

/// What the pool should do with a dropped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RetryDecision {
    /// Re-send the same logical request after this backoff.
    Retry(SimDuration),
    /// Stop retrying; the user falls back to think-then-resend.
    GiveUp,
}

/// One whole budget token, in integer micro-tokens.
///
/// The bucket is kept in `u64` micro-tokens rather than `f64` tokens: the
/// default earn rate of 0.1 has no exact binary representation, so a f64
/// bucket drifts relative to `budget_cap` over long runs (ten earns of 0.1
/// sum to 0.9999999999999999 < 1.0, spuriously denying a retry) and makes
/// `budget_denied` counts depend on accumulated rounding. Fractional
/// `budget_ratio`/`budget_cap` are rounded once to whole micro-tokens when
/// the policy is attached; thereafter every earn/spend is exact.
const MICRO: u64 = 1_000_000;

/// Per-pool retry state: policy, token bucket, per-user attempt counts and
/// a dedicated jitter stream.
#[derive(Debug, Clone)]
pub(crate) struct RetryState {
    policy: RetryPolicy,
    /// Banked budget, in micro-tokens ([`MICRO`] per retry).
    tokens: u64,
    cap: u64,
    earn: u64,
    rng: SimRng,
    attempts: HashMap<u64, u32>,
    stats: RetryStats,
    /// Micro-tokens spent on retries (audit ledger).
    #[cfg(feature = "audit")]
    spent: u64,
    /// Micro-tokens earned by successes, before clipping at the cap.
    #[cfg(feature = "audit")]
    earned: u64,
    /// Micro-tokens lost to clipping at the cap.
    #[cfg(feature = "audit")]
    clipped: u64,
}

impl RetryState {
    pub(crate) fn new(policy: RetryPolicy, rng: SimRng) -> Self {
        let cap = (policy.budget_cap * MICRO as f64).round() as u64;
        RetryState {
            tokens: cap,
            cap,
            earn: (policy.budget_ratio * MICRO as f64).round() as u64,
            policy,
            rng,
            attempts: HashMap::new(),
            stats: RetryStats::default(),
            #[cfg(feature = "audit")]
            spent: 0,
            #[cfg(feature = "audit")]
            earned: 0,
            #[cfg(feature = "audit")]
            clipped: 0,
        }
    }

    pub(crate) fn stats(&self) -> RetryStats {
        self.stats
    }

    /// A request of `user` succeeded: reset their attempt count and earn
    /// budget.
    pub(crate) fn on_success(&mut self, user: u64) {
        self.attempts.remove(&user);
        let refilled = (self.tokens + self.earn).min(self.cap);
        #[cfg(feature = "audit")]
        {
            self.earned += self.earn;
            self.clipped += self.tokens + self.earn - refilled;
        }
        self.tokens = refilled;
    }

    /// A request of `user` was dropped: decide between a backed-off retry
    /// and giving up.
    pub(crate) fn on_drop(&mut self, user: u64) -> RetryDecision {
        let attempt = *self.attempts.get(&user).unwrap_or(&0);
        if attempt >= self.policy.max_retries {
            self.attempts.remove(&user);
            self.stats.gave_up += 1;
            return RetryDecision::GiveUp;
        }
        if self.tokens < MICRO {
            self.attempts.remove(&user);
            self.stats.budget_denied += 1;
            return RetryDecision::GiveUp;
        }
        self.tokens -= MICRO;
        #[cfg(feature = "audit")]
        {
            self.spent += MICRO;
        }
        self.attempts.insert(user, attempt + 1);
        self.stats.attempts += 1;
        RetryDecision::Retry(self.backoff(attempt + 1))
    }

    /// Checks retry-budget conservation and reports violations into `sink`:
    /// the banked balance must equal the ledger
    /// `cap + earned − clipped − spent` exactly, and never exceed the cap.
    /// All quantities are integers, so equality is exact.
    #[cfg(feature = "audit")]
    pub(crate) fn audit_into(&self, now_nanos: u64, sink: &mut dyn sim_core::audit::AuditSink) {
        use sim_core::audit::{Invariant, Violation};
        // i128 so a broken ledger reports a violation instead of underflowing.
        let ledger =
            self.cap as i128 + self.earned as i128 - self.clipped as i128 - self.spent as i128;
        if self.tokens as i128 != ledger {
            sink.record(Violation {
                invariant: Invariant::RetryBudget,
                at_nanos: now_nanos,
                detail: format!(
                    "balance {} micro-tokens != ledger {} (cap {} + earned {} - clipped {} - spent {})",
                    self.tokens, ledger, self.cap, self.earned, self.clipped, self.spent
                ),
            });
        }
        if self.tokens > self.cap {
            sink.record(Violation {
                invariant: Invariant::RetryBudget,
                at_nanos: now_nanos,
                detail: format!("balance {} exceeds cap {}", self.tokens, self.cap),
            });
        }
    }

    /// Backoff before the `k`-th retry (1-based): exponential, capped,
    /// jittered.
    fn backoff(&mut self, k: u32) -> SimDuration {
        let base = self.policy.base_backoff.as_nanos() as f64;
        let cap = self.policy.max_backoff.as_nanos() as f64;
        let exp = base * 2f64.powi(k.saturating_sub(1).min(62) as i32);
        let jitter = 1.0 + self.policy.jitter_frac * (2.0 * self.rng.f64() - 1.0);
        let nanos = (exp.min(cap) * jitter).max(0.0);
        SimDuration::from_nanos(nanos as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(policy: RetryPolicy) -> RetryState {
        RetryState::new(policy, SimRng::seed_from(9).split("retry"))
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut s = state(RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        });
        assert_eq!(s.backoff(1), SimDuration::from_millis(100));
        assert_eq!(s.backoff(2), SimDuration::from_millis(200));
        assert_eq!(s.backoff(3), SimDuration::from_millis(400));
        assert_eq!(s.backoff(10), SimDuration::from_secs(5), "capped");
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let draws: Vec<u64> = (1..=20)
            .map(|k| state(RetryPolicy::default()).backoff(k).as_nanos())
            .collect();
        let again: Vec<u64> = (1..=20)
            .map(|k| state(RetryPolicy::default()).backoff(k).as_nanos())
            .collect();
        assert_eq!(draws, again, "same seed, same jitter");
        let b1 = state(RetryPolicy::default()).backoff(1).as_nanos() as f64;
        let base = SimDuration::from_millis(100).as_nanos() as f64;
        assert!((0.8 * base..=1.2 * base).contains(&b1), "{b1}");
    }

    #[test]
    fn attempts_are_bounded_per_user() {
        let mut s = state(RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        });
        assert!(matches!(s.on_drop(7), RetryDecision::Retry(_)));
        assert!(matches!(s.on_drop(7), RetryDecision::Retry(_)));
        assert_eq!(s.on_drop(7), RetryDecision::GiveUp);
        assert_eq!(s.stats().attempts, 2);
        assert_eq!(s.stats().gave_up, 1);
        // The counter reset on give-up: the next failure retries again.
        assert!(matches!(s.on_drop(7), RetryDecision::Retry(_)));
        // Success resets too.
        s.on_success(7);
        assert!(matches!(s.on_drop(7), RetryDecision::Retry(_)));
    }

    /// Regression for the f64 token bucket: ten earns of 0.1 summed to
    /// 0.9999999999999999 < 1.0, so a client that paid one token and then
    /// banked ten successes was spuriously budget-denied on the next drop.
    /// Integer micro-tokens make the balance exactly 1.0 token here.
    #[test]
    fn fractional_earns_accumulate_exactly() {
        let mut s = state(RetryPolicy {
            max_retries: 100,
            budget_cap: 1.0,
            budget_ratio: 0.1,
            ..RetryPolicy::default()
        });
        assert!(matches!(s.on_drop(1), RetryDecision::Retry(_)), "1 -> 0");
        for _ in 0..10 {
            s.on_success(1);
        }
        assert!(
            matches!(s.on_drop(2), RetryDecision::Retry(_)),
            "10 × 0.1 must buy exactly one retry"
        );
        assert_eq!(s.stats().budget_denied, 0);
    }

    /// Under `--features audit` the earn/spend ledger reconciles exactly
    /// through a mix of drops, clipped refills and give-ups.
    #[cfg(feature = "audit")]
    #[test]
    fn audit_ledger_reconciles() {
        use sim_core::audit::CountingSink;
        let mut s = state(RetryPolicy {
            max_retries: 2,
            budget_cap: 3.0,
            budget_ratio: 0.7,
            ..RetryPolicy::default()
        });
        for user in 0..20u64 {
            let _ = s.on_drop(user % 5);
            if user % 3 == 0 {
                s.on_success(user % 5);
            }
        }
        let mut sink = CountingSink::new();
        s.audit_into(1_000, &mut sink);
        assert_eq!(sink.total(), 0, "{}", sink.summary());
    }

    #[test]
    fn budget_exhaustion_denies_retries_and_success_refills() {
        let mut s = state(RetryPolicy {
            max_retries: 100,
            budget_cap: 2.0,
            budget_ratio: 0.5,
            ..RetryPolicy::default()
        });
        // Distinct users so max_retries never triggers first.
        assert!(matches!(s.on_drop(1), RetryDecision::Retry(_)));
        assert!(matches!(s.on_drop(2), RetryDecision::Retry(_)));
        assert_eq!(s.on_drop(3), RetryDecision::GiveUp, "budget empty");
        assert_eq!(s.stats().budget_denied, 1);
        // Two successes earn one token.
        s.on_success(1);
        s.on_success(2);
        assert!(matches!(s.on_drop(4), RetryDecision::Retry(_)));
    }
}
