//! Scaling a normalised trace shape to absolute load over a run.

use crate::TraceShape;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// A trace shape scaled to an absolute peak over a run of fixed duration:
/// `value_at(t) = peak × shape(t / duration)`.
///
/// Depending on the generator, `peak` is interpreted as requests/second
/// (open loop) or concurrent users (closed loop). The paper's experiments
/// use 12-minute runs with 3 500 users (Sock Shop Cart) or 4 500 users
/// (Social Network Read-HomeTimeline).
///
/// # Example
///
/// ```
/// use workload::{RateCurve, TraceShape};
/// use sim_core::{SimDuration, SimTime};
///
/// let c = RateCurve::new(TraceShape::BigSpike, 3500.0, SimDuration::from_secs(720));
/// let mid = c.value_at(SimTime::from_secs(360)); // middle of the spike
/// assert!(mid > 3400.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateCurve {
    shape: TraceShape,
    peak: f64,
    duration: SimDuration,
}

impl RateCurve {
    /// Creates a curve.
    ///
    /// # Panics
    ///
    /// Panics if `peak` is not positive/finite or `duration` is zero.
    pub fn new(shape: TraceShape, peak: f64, duration: SimDuration) -> Self {
        assert!(peak > 0.0 && peak.is_finite(), "peak must be positive");
        assert!(!duration.is_zero(), "duration must be non-zero");
        RateCurve {
            shape,
            peak,
            duration,
        }
    }

    /// The underlying shape.
    pub fn shape(&self) -> TraceShape {
        self.shape
    }

    /// The configured peak.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The run duration.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The absolute load at instant `t` (clamped to the run).
    pub fn value_at(&self, t: SimTime) -> f64 {
        let frac = t.as_nanos() as f64 / self.duration.as_nanos() as f64;
        self.peak * self.shape.level_at(frac)
    }

    /// An upper bound on the curve (used as the thinning majorant).
    pub fn max_value(&self) -> f64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_shape_by_peak() {
        let c = RateCurve::new(
            TraceShape::SlowlyVarying,
            1000.0,
            SimDuration::from_secs(100),
        );
        let v = c.value_at(SimTime::from_secs(50));
        assert!((v - 1000.0).abs() < 1.0, "peak of the slow wave: {v}");
        assert!(c.value_at(SimTime::ZERO) < 500.0);
        assert!(c.max_value() >= v);
    }

    #[test]
    fn clamps_past_the_end() {
        let c = RateCurve::new(TraceShape::DualPhase, 100.0, SimDuration::from_secs(10));
        let end = c.value_at(SimTime::from_secs(10));
        let beyond = c.value_at(SimTime::from_secs(50));
        assert_eq!(end, beyond);
    }

    #[test]
    #[should_panic(expected = "peak must be positive")]
    fn zero_peak_panics() {
        let _ = RateCurve::new(TraceShape::BigSpike, 0.0, SimDuration::from_secs(1));
    }
}
