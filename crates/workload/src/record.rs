//! Recording and replaying workloads.
//!
//! A closed-loop run is only reproducible together with the system it drove
//! (completions feed back into send times). Recording the *sends* that a
//! run actually made turns it into an open-loop trace that can be replayed
//! against any configuration — how production traces (and the paper's
//! Gandhi et al. traces) are used.

use serde::{Deserialize, Serialize};
use sim_core::SimTime;
use telemetry::RequestTypeId;

/// One recorded arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalRecord {
    /// When the request was issued (nanoseconds since run start).
    pub at_nanos: u64,
    /// The request type issued.
    pub rtype: RequestTypeId,
}

impl ArrivalRecord {
    /// The arrival instant.
    pub fn at(&self) -> SimTime {
        SimTime::from_nanos(self.at_nanos)
    }
}

/// A recorded workload: a time-ordered list of arrivals.
///
/// # Example
///
/// ```
/// use workload::{ArrivalRecord, WorkloadTrace};
/// use sim_core::SimTime;
/// use telemetry::RequestTypeId;
///
/// let mut trace = WorkloadTrace::new();
/// trace.push(SimTime::from_millis(5), RequestTypeId(0));
/// trace.push(SimTime::from_millis(9), RequestTypeId(1));
/// let json = trace.to_json().unwrap();
/// let back = WorkloadTrace::from_json(&json).unwrap();
/// assert_eq!(back.len(), 2);
/// assert_eq!(back.arrivals()[1].rtype, RequestTypeId(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    arrivals: Vec<ArrivalRecord>,
}

impl WorkloadTrace {
    /// An empty trace.
    pub fn new() -> Self {
        WorkloadTrace::default()
    }

    /// Appends an arrival.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous arrival (traces are
    /// time-ordered by construction).
    pub fn push(&mut self, at: SimTime, rtype: RequestTypeId) {
        if let Some(last) = self.arrivals.last() {
            assert!(
                at.as_nanos() >= last.at_nanos,
                "arrivals must be recorded in time order"
            );
        }
        self.arrivals.push(ArrivalRecord {
            at_nanos: at.as_nanos(),
            rtype,
        });
    }

    /// The recorded arrivals, time-ordered.
    pub fn arrivals(&self) -> &[ArrivalRecord] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The trace's duration (instant of the last arrival).
    pub fn duration(&self) -> SimTime {
        self.arrivals.last().map_or(SimTime::ZERO, |a| a.at())
    }

    /// Mean arrival rate in requests/second over the trace's duration.
    pub fn mean_rate(&self) -> f64 {
        let secs = self.duration().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.arrivals.len() as f64 / secs
        }
    }

    /// Arrivals within `[from, to)` per second, bucketed by `bucket_secs` —
    /// the trace's rate curve, e.g. for plotting or re-scaling.
    pub fn rate_curve(&self, bucket_secs: u64) -> Vec<(u64, f64)> {
        assert!(bucket_secs > 0, "bucket must be non-zero");
        let mut buckets: Vec<u64> = Vec::new();
        for a in &self.arrivals {
            let idx = (a.at().as_secs_f64() / bucket_secs as f64) as usize;
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += 1;
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, n)| (i as u64 * bucket_secs, n as f64 / bucket_secs as f64))
            .collect()
    }

    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` failures (practically unreachable for this
    /// type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl Extend<ArrivalRecord> for WorkloadTrace {
    fn extend<T: IntoIterator<Item = ArrivalRecord>>(&mut self, iter: T) {
        for a in iter {
            self.push(a.at(), a.rtype);
        }
    }
}

impl FromIterator<ArrivalRecord> for WorkloadTrace {
    fn from_iter<T: IntoIterator<Item = ArrivalRecord>>(iter: T) -> Self {
        let mut trace = WorkloadTrace::new();
        trace.extend(iter);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NhppArrivals, RateCurve, TraceShape};
    use sim_core::{SimDuration, SimRng};

    #[test]
    fn records_round_trip_through_json() {
        let curve = RateCurve::new(TraceShape::BigSpike, 200.0, SimDuration::from_secs(30));
        let trace: WorkloadTrace = NhppArrivals::new(curve, SimRng::seed_from(4))
            .map(|at| ArrivalRecord {
                at_nanos: at.as_nanos(),
                rtype: RequestTypeId(0),
            })
            .collect();
        assert!(trace.len() > 1_000);
        let json = trace.to_json().unwrap();
        let back = WorkloadTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rate_curve_reflects_the_spike() {
        let curve = RateCurve::new(TraceShape::BigSpike, 500.0, SimDuration::from_secs(100));
        let trace: WorkloadTrace = NhppArrivals::new(curve, SimRng::seed_from(5))
            .map(|at| ArrivalRecord {
                at_nanos: at.as_nanos(),
                rtype: RequestTypeId(0),
            })
            .collect();
        let rates = trace.rate_curve(10);
        let mid = rates[5].1; // t = 50 s: the spike
        let edge = rates[1].1; // t = 10 s: the plateau
        assert!(mid > 1.8 * edge, "spike {mid} vs plateau {edge}");
        assert!(trace.mean_rate() > 150.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut trace = WorkloadTrace::new();
        trace.push(SimTime::from_millis(10), RequestTypeId(0));
        trace.push(SimTime::from_millis(5), RequestTypeId(0));
    }

    #[test]
    fn empty_trace_basics() {
        let t = WorkloadTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimTime::ZERO);
        assert_eq!(t.mean_rate(), 0.0);
        assert!(t.rate_curve(10).is_empty());
    }
}
