//! Weighted request-type mixes (and mid-run mix switching).

use serde::{Deserialize, Serialize};
use sim_core::SimRng;
use telemetry::RequestTypeId;

/// A weighted mix of request types, sampled per arrival.
///
/// Supports the paper's §5.3 *system state drifting* experiment, where the
/// workload switches from light to heavy requests mid-run: build two mixes
/// and swap them at the drift instant.
///
/// # Example
///
/// ```
/// use workload::Mix;
/// use telemetry::RequestTypeId;
/// use sim_core::SimRng;
///
/// let mix = Mix::new(vec![(RequestTypeId(0), 3.0), (RequestTypeId(1), 1.0)]);
/// let mut rng = SimRng::seed_from(1);
/// let _rt = mix.sample(&mut rng); // 75 % type 0, 25 % type 1
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    entries: Vec<(RequestTypeId, f64)>,
    total: f64,
}

impl Mix {
    /// Builds a mix from `(type, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, or any weight is non-positive or
    /// non-finite.
    pub fn new(entries: Vec<(RequestTypeId, f64)>) -> Self {
        assert!(!entries.is_empty(), "mix must have at least one entry");
        for &(rt, w) in &entries {
            assert!(w > 0.0 && w.is_finite(), "invalid weight {w} for {rt}");
        }
        let total = entries.iter().map(|e| e.1).sum();
        Mix { entries, total }
    }

    /// A single-type mix.
    pub fn single(rtype: RequestTypeId) -> Self {
        Mix::new(vec![(rtype, 1.0)])
    }

    /// Draws one request type.
    pub fn sample(&self, rng: &mut SimRng) -> RequestTypeId {
        let mut x = rng.f64() * self.total;
        for &(rt, w) in &self.entries {
            if x < w {
                return rt;
            }
            x -= w;
        }
        self.entries.last().expect("non-empty").0
    }

    /// The probability assigned to `rtype` (0 when absent).
    pub fn probability(&self, rtype: RequestTypeId) -> f64 {
        self.entries
            .iter()
            .filter(|(rt, _)| *rt == rtype)
            .map(|(_, w)| w / self.total)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mix_always_samples_itself() {
        let mix = Mix::single(RequestTypeId(4));
        let mut rng = SimRng::seed_from(0);
        for _ in 0..100 {
            assert_eq!(mix.sample(&mut rng), RequestTypeId(4));
        }
        assert_eq!(mix.probability(RequestTypeId(4)), 1.0);
        assert_eq!(mix.probability(RequestTypeId(5)), 0.0);
    }

    #[test]
    fn weights_shape_frequencies() {
        let mix = Mix::new(vec![(RequestTypeId(0), 3.0), (RequestTypeId(1), 1.0)]);
        let mut rng = SimRng::seed_from(1);
        let hits = (0..40_000)
            .filter(|_| mix.sample(&mut rng) == RequestTypeId(0))
            .count();
        let frac = hits as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
        assert!((mix.probability(RequestTypeId(0)) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_mix_panics() {
        let _ = Mix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn zero_weight_panics() {
        let _ = Mix::new(vec![(RequestTypeId(0), 0.0)]);
    }
}
