//! Simulated network substrate between services (madsim-style seams).
//!
//! The microsimulator's child calls were originally *function edges*: a
//! constant `net_delay` sampled from the world RNG, never lost, never
//! queued, never partitioned. This crate supplies the first-class
//! message-passing transport that replaces them when installed:
//!
//! * **per-edge latency distributions** ([`EdgeParams::latency`]), sampled
//!   from a dedicated split-RNG stream so installing a network cannot
//!   perturb service-demand sampling;
//! * **message loss** ([`EdgeParams::loss`]) and, for telemetry traffic,
//!   **duplicate delivery** ([`EdgeParams::duplicate`]) — the retransmit
//!   echo that exercises warehouse idempotence;
//! * **bandwidth and queueing** ([`EdgeParams::serialize`]): each directed
//!   edge with a serialization cost is a FIFO link; messages queue behind
//!   the previous departure and are dropped once the queueing delay exceeds
//!   [`EdgeParams::max_queue_delay`] (bounded link capacity — the
//!   retry-storm saturation regime);
//! * **per-call timeouts** ([`EdgeParams::call_timeout`]) with a bounded
//!   resend budget ([`EdgeParams::max_call_retries`]), driven by the world;
//! * **partition/heal windows** and **slow-link windows**
//!   ([`Network::partition`], [`Network::slow_link`]), driven through the
//!   fault-schedule event machinery.
//!
//! # Determinism contract
//!
//! All stochastic choices draw from the [`Network`]'s own RNG (the world
//! splits `"network"` off its root seed), in a fixed order per send: loss
//! first, then latency, then (telemetry only) duplication. A *transparent*
//! edge — constant-zero latency, zero loss, zero duplication, no
//! serialization — draws **nothing** ([`Dist::Constant`] consumes no RNG
//! words), so a fully transparent network is byte-identical to the
//! function-edge engine it replaces; the engine is kept in-tree as the
//! equivalence oracle, the same pattern as the heap/wheel and ring/scan
//! oracles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;
use sim_core::{Dist, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;
use telemetry::ServiceId;

/// One side of a network edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// The user-facing client (issues requests, receives responses).
    Client,
    /// A simulated service.
    Service(ServiceId),
    /// The monitoring plane (receives telemetry reports).
    Monitor,
}

impl Endpoint {
    /// Stable key for link bookkeeping.
    fn code(self) -> u64 {
        match self {
            Endpoint::Client => u64::MAX,
            Endpoint::Monitor => u64::MAX - 1,
            Endpoint::Service(s) => u64::from(s.0),
        }
    }
}

/// Transmission parameters of one directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeParams {
    /// One-way propagation latency distribution.
    pub latency: Dist,
    /// Per-message drop probability in `[0, 1)`.
    pub loss: f64,
    /// Per-message duplicate-delivery probability in `[0, 1)`. Only
    /// consulted for telemetry reports ([`Network::send_dup`]): RPC and
    /// completion-sample streams are modeled exactly-once-or-lost, while
    /// trace retransmits exercise warehouse idempotence.
    pub duplicate: f64,
    /// Per-message serialization time (inverse bandwidth). `Some` makes the
    /// directed edge a FIFO link: messages depart one serialization interval
    /// apart and queue behind each other.
    pub serialize: Option<SimDuration>,
    /// Bound on link queueing delay. A message that would wait longer is
    /// dropped as [`LossCause::Saturated`]. Only meaningful with
    /// [`EdgeParams::serialize`].
    pub max_queue_delay: Option<SimDuration>,
    /// Caller-side timeout per inter-service call. When it fires before the
    /// response arrives, the world resends the call (a fresh message, and a
    /// fresh execution at the target) up to
    /// [`EdgeParams::max_call_retries`] times.
    pub call_timeout: Option<SimDuration>,
    /// Resend budget after [`EdgeParams::call_timeout`] expiries; once
    /// exhausted the whole request is dropped as a network timeout.
    pub max_call_retries: u32,
}

impl Default for EdgeParams {
    /// The transparent edge: zero constant latency, no loss, no
    /// duplication, no serialization, no timeout. Sends over it draw no
    /// randomness and deliver at the send instant.
    fn default() -> Self {
        EdgeParams {
            latency: Dist::constant_us(0),
            loss: 0.0,
            duplicate: 0.0,
            serialize: None,
            max_queue_delay: None,
            call_timeout: None,
            max_call_retries: 0,
        }
    }
}

impl EdgeParams {
    /// A lossless edge with the given constant one-way latency.
    pub fn constant(latency: SimDuration) -> Self {
        EdgeParams {
            latency: Dist::Constant {
                nanos: latency.as_nanos(),
            },
            ..Default::default()
        }
    }

    /// Sets the latency distribution.
    pub fn latency(mut self, latency: Dist) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `loss` is in `[0, 1)`.
    pub fn loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }

    /// Sets the per-message duplicate-delivery probability.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1)`.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "duplicate must be in [0, 1)");
        self.duplicate = p;
        self
    }

    /// Makes the edge a FIFO link: `serialize` per message, dropping
    /// messages that would queue longer than `max_queue_delay`.
    pub fn bandwidth(mut self, serialize: SimDuration, max_queue_delay: SimDuration) -> Self {
        self.serialize = Some(serialize);
        self.max_queue_delay = Some(max_queue_delay);
        self
    }

    /// Sets the per-call timeout and resend budget.
    pub fn timeout(mut self, after: SimDuration, retries: u32) -> Self {
        self.call_timeout = Some(after);
        self.max_call_retries = retries;
        self
    }

    /// True when sends over this edge draw no randomness and deliver at the
    /// send instant — the byte-identity precondition vs the function-edge
    /// oracle.
    pub fn is_transparent(&self) -> bool {
        matches!(self.latency, Dist::Constant { nanos: 0 })
            && self.loss == 0.0
            && self.duplicate == 0.0
            && self.serialize.is_none()
    }
}

/// Edge parameters for every pair of endpoints in a world.
#[derive(Debug, Clone, Default)]
pub struct NetworkConfig {
    /// Parameters of service → service edges without an override.
    pub default_edge: EdgeParams,
    /// Parameters of the client ↔ entry-service edge. Loss applies to the
    /// ingress direction only (a failed connect); responses are delayed but
    /// never lost, modeling an established TCP connection.
    pub client_edge: EdgeParams,
    /// Parameters of the service → monitoring-plane edge that telemetry
    /// reports ride.
    pub telemetry_edge: EdgeParams,
    /// Directed service-pair overrides.
    overrides: BTreeMap<(ServiceId, ServiceId), EdgeParams>,
}

impl NetworkConfig {
    /// The fully transparent network: every edge is the [`EdgeParams`]
    /// default. Installing it reproduces the function-edge engine with
    /// zero `net_delay`, byte for byte.
    pub fn transparent() -> Self {
        NetworkConfig::default()
    }

    /// Constant `latency` on every client and service edge (telemetry stays
    /// transparent) — byte-identical to the function-edge engine with
    /// `WorldConfig::net_delay == Dist::Constant(latency)`.
    pub fn constant_latency(latency: SimDuration) -> Self {
        NetworkConfig {
            default_edge: EdgeParams::constant(latency),
            client_edge: EdgeParams::constant(latency),
            ..Default::default()
        }
    }

    /// Sets the default service-edge parameters.
    pub fn default_edge(mut self, edge: EdgeParams) -> Self {
        self.default_edge = edge;
        self
    }

    /// Sets the client-edge parameters.
    pub fn client_edge(mut self, edge: EdgeParams) -> Self {
        self.client_edge = edge;
        self
    }

    /// Sets the telemetry-edge parameters.
    pub fn telemetry_edge(mut self, edge: EdgeParams) -> Self {
        self.telemetry_edge = edge;
        self
    }

    /// Overrides the directed `from → to` service edge.
    pub fn edge(mut self, from: ServiceId, to: ServiceId, params: EdgeParams) -> Self {
        self.overrides.insert((from, to), params);
        self
    }

    /// Overrides both directions between `a` and `b`.
    pub fn link(self, a: ServiceId, b: ServiceId, params: EdgeParams) -> Self {
        self.edge(a, b, params).edge(b, a, params)
    }

    /// Resolves the parameters governing a `from → to` send.
    pub fn params(&self, from: Endpoint, to: Endpoint) -> &EdgeParams {
        match (from, to) {
            (Endpoint::Service(a), Endpoint::Service(b)) => {
                self.overrides.get(&(a, b)).unwrap_or(&self.default_edge)
            }
            (_, Endpoint::Monitor) | (Endpoint::Monitor, _) => &self.telemetry_edge,
            _ => &self.client_edge,
        }
    }

    /// True when the telemetry edge delivers synchronously and losslessly —
    /// the world then ingests telemetry inline, exactly like the
    /// function-edge engine.
    pub fn telemetry_is_transparent(&self) -> bool {
        self.telemetry_edge.is_transparent()
    }

    /// The conservative cross-shard lookahead this network admits: the
    /// minimum over every message-carrying edge (client, default, and all
    /// overrides) of the latency distribution's lower bound.
    ///
    /// A parallel engine may advance two partitions independently for up to
    /// this long, because no message sent by one can reach the other
    /// sooner. Zero (e.g. an exponential-latency edge, or a transparent
    /// network) means the topology admits no lookahead and must run
    /// sequentially.
    pub fn lookahead(&self) -> SimDuration {
        let mut min = self
            .client_edge
            .latency
            .lower_bound()
            .min(self.default_edge.latency.lower_bound());
        for params in self.overrides.values() {
            min = min.min(params.latency.lower_bound());
        }
        min
    }
}

/// Why the network dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LossCause {
    /// Random per-message loss.
    Random,
    /// The directed edge is inside a partition window.
    Partitioned,
    /// The link's bounded queue overflowed.
    Saturated,
}

/// The outcome of handing one message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message arrives at `at`; `duplicate` carries the delivery time
    /// of a retransmit echo, when one was sampled.
    Deliver {
        /// Delivery instant.
        at: SimTime,
        /// Delivery instant of the duplicate copy, if any.
        duplicate: Option<SimTime>,
    },
    /// The message vanished.
    Lost(LossCause),
}

/// Cumulative transport counters, serialized into bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct NetStats {
    /// Messages handed to the network (all kinds, including lost ones).
    pub messages: u64,
    /// Messages dropped by random loss.
    pub lost_random: u64,
    /// Messages dropped inside a partition window.
    pub lost_partitioned: u64,
    /// Messages dropped by link-queue overflow.
    pub lost_saturated: u64,
    /// Duplicate copies delivered (telemetry retransmit echoes).
    pub duplicated: u64,
    /// Inter-service calls resent after a per-call timeout.
    pub call_retries: u64,
    /// Child executions orphaned by a resend racing the original (the
    /// request finalized while a duplicate execution was still running).
    pub orphaned_frames: u64,
}

impl NetStats {
    /// Total messages the network dropped, across causes.
    pub fn lost_total(&self) -> u64 {
        self.lost_random + self.lost_partitioned + self.lost_saturated
    }
}

/// The runtime transport state threaded through a world.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    rng: SimRng,
    /// Next-free instant per directed link with a serialization cost.
    links: BTreeMap<(u64, u64), SimTime>,
    /// Active partition windows per directed service pair (reference
    /// counted: overlapping windows heal only when the last one ends).
    partitions: BTreeMap<(ServiceId, ServiceId), u32>,
    /// Active slow-link factors per directed service pair (stacked
    /// multiplicatively across overlapping windows).
    slow: BTreeMap<(ServiceId, ServiceId), Vec<f64>>,
    stats: NetStats,
}

impl Network {
    /// Creates a network from its config and a dedicated RNG stream.
    pub fn new(config: NetworkConfig, rng: SimRng) -> Self {
        Network {
            config,
            rng,
            links: BTreeMap::new(),
            partitions: BTreeMap::new(),
            slow: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// The installed edge parameters.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Transport counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Records one call resend (the world drives resends; the network only
    /// counts them).
    pub fn note_call_retry(&mut self) {
        self.stats.call_retries += 1;
    }

    /// Records one orphaned child execution.
    pub fn note_orphan(&mut self) {
        self.stats.orphaned_frames += 1;
    }

    /// Opens a partition window between `a` and `b` (both directions).
    /// Messages already in flight are unaffected; new sends on the pair are
    /// dropped until [`Network::heal`].
    pub fn partition(&mut self, a: ServiceId, b: ServiceId) {
        *self.partitions.entry((a, b)).or_insert(0) += 1;
        *self.partitions.entry((b, a)).or_insert(0) += 1;
    }

    /// Closes one partition window between `a` and `b`.
    pub fn heal(&mut self, a: ServiceId, b: ServiceId) {
        for key in [(a, b), (b, a)] {
            if let Some(n) = self.partitions.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.partitions.remove(&key);
                }
            }
        }
    }

    /// True when `from → to` is currently partitioned.
    pub fn is_partitioned(&self, from: ServiceId, to: ServiceId) -> bool {
        self.partitions.contains_key(&(from, to))
    }

    /// Opens a slow-link window between `a` and `b` (both directions):
    /// sampled latencies on the pair are multiplied by `factor` until
    /// [`Network::heal_slow_link`] removes it. Overlapping windows stack
    /// multiplicatively.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn slow_link(&mut self, a: ServiceId, b: ServiceId, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slow-link factor must be positive and finite"
        );
        self.slow.entry((a, b)).or_default().push(factor);
        self.slow.entry((b, a)).or_default().push(factor);
    }

    /// Closes one slow-link window carrying `factor` between `a` and `b`.
    pub fn heal_slow_link(&mut self, a: ServiceId, b: ServiceId, factor: f64) {
        for key in [(a, b), (b, a)] {
            if let Some(fs) = self.slow.get_mut(&key) {
                if let Some(i) = fs.iter().position(|&f| f == factor) {
                    fs.remove(i);
                }
                if fs.is_empty() {
                    self.slow.remove(&key);
                }
            }
        }
    }

    /// Applies a slow-link factor, bypassing the float round-trip entirely
    /// at the (common) factor of exactly 1.0 so unaffected edges keep
    /// integer-exact latencies.
    fn scaled(latency: SimDuration, factor: f64) -> SimDuration {
        if factor == 1.0 {
            latency
        } else {
            latency.mul_f64(factor)
        }
    }

    fn slow_factor(&self, from: Endpoint, to: Endpoint) -> f64 {
        match (from, to) {
            (Endpoint::Service(a), Endpoint::Service(b)) => {
                self.slow.get(&(a, b)).map_or(1.0, |fs| fs.iter().product())
            }
            _ => 1.0,
        }
    }

    /// Hands one message to the network (exactly-once-or-lost: no
    /// duplication). RPC requests, responses and completion samples ride
    /// this path.
    pub fn send(&mut self, now: SimTime, from: Endpoint, to: Endpoint) -> SendOutcome {
        self.transmit(now, from, to, false)
    }

    /// Like [`Network::send`] but may additionally deliver a duplicate copy
    /// per [`EdgeParams::duplicate`] — the path telemetry trace reports
    /// ride, exercising warehouse idempotence.
    pub fn send_dup(&mut self, now: SimTime, from: Endpoint, to: Endpoint) -> SendOutcome {
        self.transmit(now, from, to, true)
    }

    fn transmit(&mut self, now: SimTime, from: Endpoint, to: Endpoint, dup: bool) -> SendOutcome {
        self.stats.messages += 1;
        if let (Endpoint::Service(a), Endpoint::Service(b)) = (from, to) {
            if self.is_partitioned(a, b) {
                self.stats.lost_partitioned += 1;
                return SendOutcome::Lost(LossCause::Partitioned);
            }
        }
        let edge = *self.config.params(from, to);
        if edge.loss > 0.0 && self.rng.chance(edge.loss) {
            self.stats.lost_random += 1;
            return SendOutcome::Lost(LossCause::Random);
        }
        // Serialization onto a bounded FIFO link, if configured.
        let mut depart = now;
        if let Some(ser) = edge.serialize {
            let key = (from.code(), to.code());
            let free = self.links.get(&key).copied().unwrap_or(SimTime::ZERO);
            let start = free.max(now);
            if let Some(bound) = edge.max_queue_delay {
                if start - now > bound {
                    self.stats.lost_saturated += 1;
                    return SendOutcome::Lost(LossCause::Saturated);
                }
            }
            depart = start + ser;
            self.links.insert(key, depart);
        }
        let factor = self.slow_factor(from, to);
        let at = depart + Self::scaled(edge.latency.sample(&mut self.rng), factor);
        let duplicate = if dup && edge.duplicate > 0.0 && self.rng.chance(edge.duplicate) {
            self.stats.duplicated += 1;
            Some(depart + Self::scaled(edge.latency.sample(&mut self.rng), factor))
        } else {
            None
        };
        SendOutcome::Deliver { at, duplicate }
    }

    /// Delivery instant of a response on the client edge: latency applies
    /// (including queueing if configured) but the message is never lost —
    /// the response rides the established connection.
    pub fn deliver_response(&mut self, now: SimTime, from: Endpoint) -> SimTime {
        self.stats.messages += 1;
        let edge = *self.config.params(from, Endpoint::Client);
        now + edge.latency.sample(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(n: u32) -> ServiceId {
        ServiceId(n)
    }

    fn net(config: NetworkConfig) -> Network {
        Network::new(config, SimRng::seed_from(7))
    }

    #[test]
    fn transparent_network_delivers_instantly_without_draws() {
        let mut n = net(NetworkConfig::transparent());
        let before = n.rng.clone();
        let t = SimTime::from_millis(5);
        for _ in 0..100 {
            let out = n.send(t, Endpoint::Service(svc(0)), Endpoint::Service(svc(1)));
            assert_eq!(
                out,
                SendOutcome::Deliver {
                    at: t,
                    duplicate: None
                }
            );
        }
        assert_eq!(n.deliver_response(t, Endpoint::Service(svc(0))), t);
        // No randomness consumed: the stream is exactly where it started.
        let mut a = before;
        let mut b = n.rng.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lookahead_is_min_over_message_edges() {
        // Transparent: every edge is zero-latency → no lookahead.
        assert_eq!(NetworkConfig::transparent().lookahead(), SimDuration::ZERO);
        // Constant latency everywhere → that latency.
        let d = SimDuration::from_micros(200);
        assert_eq!(NetworkConfig::constant_latency(d).lookahead(), d);
        // An override with a smaller lower bound wins.
        let cfg = NetworkConfig::constant_latency(d).edge(
            svc(3),
            svc(4),
            EdgeParams::constant(SimDuration::from_micros(50)),
        );
        assert_eq!(cfg.lookahead(), SimDuration::from_micros(50));
        // Unbounded-below edge latency (exponential) kills all lookahead.
        let cfg = NetworkConfig::constant_latency(d).edge(
            svc(1),
            svc(2),
            EdgeParams::default().latency(Dist::exponential_ms(1.0)),
        );
        assert_eq!(cfg.lookahead(), SimDuration::ZERO);
        // The telemetry edge does not constrain lookahead: reports are
        // merged at barriers, not exchanged between shards mid-window.
        let cfg = NetworkConfig::constant_latency(d)
            .telemetry_edge(EdgeParams::default().latency(Dist::exponential_ms(1.0)));
        assert_eq!(cfg.lookahead(), d);
    }

    #[test]
    fn constant_latency_shifts_delivery() {
        let d = SimDuration::from_millis(3);
        let mut n = net(NetworkConfig::constant_latency(d));
        let t = SimTime::from_secs(1);
        match n.send(t, Endpoint::Client, Endpoint::Service(svc(0))) {
            SendOutcome::Deliver { at, duplicate } => {
                assert_eq!(at, t + d);
                assert_eq!(duplicate, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn partition_drops_and_heals() {
        let mut n = net(NetworkConfig::transparent());
        n.partition(svc(1), svc(2));
        let t = SimTime::ZERO;
        assert_eq!(
            n.send(t, Endpoint::Service(svc(1)), Endpoint::Service(svc(2))),
            SendOutcome::Lost(LossCause::Partitioned)
        );
        assert_eq!(
            n.send(t, Endpoint::Service(svc(2)), Endpoint::Service(svc(1))),
            SendOutcome::Lost(LossCause::Partitioned)
        );
        // An unrelated pair is unaffected.
        assert!(matches!(
            n.send(t, Endpoint::Service(svc(1)), Endpoint::Service(svc(3))),
            SendOutcome::Deliver { .. }
        ));
        // Overlapping windows heal only when the last one closes.
        n.partition(svc(1), svc(2));
        n.heal(svc(1), svc(2));
        assert!(n.is_partitioned(svc(1), svc(2)));
        n.heal(svc(1), svc(2));
        assert!(!n.is_partitioned(svc(1), svc(2)));
        assert_eq!(n.stats().lost_partitioned, 2);
    }

    #[test]
    fn slow_link_scales_latency_and_stacks() {
        let d = SimDuration::from_millis(10);
        let mut n = net(NetworkConfig::constant_latency(d));
        n.slow_link(svc(0), svc(1), 3.0);
        n.slow_link(svc(0), svc(1), 2.0);
        let t = SimTime::ZERO;
        match n.send(t, Endpoint::Service(svc(0)), Endpoint::Service(svc(1))) {
            SendOutcome::Deliver { at, .. } => assert_eq!(at, t + d.mul_f64(6.0)),
            other => panic!("unexpected {other:?}"),
        }
        n.heal_slow_link(svc(0), svc(1), 3.0);
        match n.send(t, Endpoint::Service(svc(1)), Endpoint::Service(svc(0))) {
            SendOutcome::Deliver { at, .. } => assert_eq!(at, t + d.mul_f64(2.0)),
            other => panic!("unexpected {other:?}"),
        }
        n.heal_slow_link(svc(0), svc(1), 2.0);
        match n.send(t, Endpoint::Service(svc(0)), Endpoint::Service(svc(1))) {
            SendOutcome::Deliver { at, .. } => assert_eq!(at, t + d),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bounded_link_queues_then_saturates() {
        let ser = SimDuration::from_millis(1);
        let cfg = NetworkConfig::transparent()
            .default_edge(EdgeParams::default().bandwidth(ser, SimDuration::from_millis(2)));
        let mut n = net(cfg);
        let t = SimTime::ZERO;
        let (a, b) = (Endpoint::Service(svc(0)), Endpoint::Service(svc(1)));
        // Four back-to-back messages: 1 ms apart; the fourth would queue
        // 3 ms > the 2 ms bound and is dropped.
        let mut ats = Vec::new();
        for _ in 0..4 {
            match n.send(t, a, b) {
                SendOutcome::Deliver { at, .. } => ats.push(at.as_millis()),
                SendOutcome::Lost(cause) => {
                    assert_eq!(cause, LossCause::Saturated);
                    ats.push(u64::MAX);
                }
            }
        }
        assert_eq!(ats, vec![1, 2, 3, u64::MAX]);
        assert_eq!(n.stats().lost_saturated, 1);
        // The reverse direction is a separate link.
        assert!(matches!(n.send(t, b, a), SendOutcome::Deliver { .. }));
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let cfg = NetworkConfig::transparent().default_edge(EdgeParams::default().loss(0.5));
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let mut n = net(cfg.clone());
                (0..64)
                    .map(|_| {
                        matches!(
                            n.send(
                                SimTime::ZERO,
                                Endpoint::Service(svc(0)),
                                Endpoint::Service(svc(1))
                            ),
                            SendOutcome::Deliver { .. }
                        )
                    })
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].iter().any(|&d| d) && runs[0].iter().any(|&d| !d));
    }

    #[test]
    fn duplicates_only_on_the_dup_path() {
        let cfg =
            NetworkConfig::transparent().telemetry_edge(EdgeParams::default().duplicate(0.999_999));
        let mut n = net(cfg);
        let from = Endpoint::Service(svc(0));
        match n.send_dup(SimTime::ZERO, from, Endpoint::Monitor) {
            SendOutcome::Deliver { duplicate, .. } => {
                assert!(duplicate.is_some(), "dup path must duplicate")
            }
            other => panic!("unexpected {other:?}"),
        }
        match n.send(SimTime::ZERO, from, Endpoint::Monitor) {
            SendOutcome::Deliver { duplicate, .. } => {
                assert!(duplicate.is_none(), "send path never duplicates")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transparency_predicate() {
        assert!(EdgeParams::default().is_transparent());
        assert!(!EdgeParams::constant(SimDuration::from_nanos(1)).is_transparent());
        assert!(!EdgeParams::default().loss(0.1).is_transparent());
        assert!(NetworkConfig::transparent().telemetry_is_transparent());
    }
}
