//! Kubernetes Horizontal Pod Autoscaling (rule-based replica scaling).

use microsim::World;
use sim_core::{SimDuration, SimTime};
use sora_core::{Controller, UtilizationProbe};
use telemetry::ServiceId;

/// HPA tuning, mirroring the upstream defaults the paper configures
/// (scale at 80 % CPU; 15 s control period is supplied by the runner).
#[derive(Debug, Clone, Copy)]
pub struct HpaConfig {
    /// Target mean CPU utilisation (0..1); the paper's rule is
    /// "Pod CPU utilisation > 80 %".
    pub target_utilization: f64,
    /// Replica floor.
    pub min_replicas: usize,
    /// Replica ceiling.
    pub max_replicas: usize,
    /// Scale-*down* stabilisation: act on the maximum desired replica
    /// count seen over this trailing window (kubernetes defaults to 5 min;
    /// the paper's 12-minute runs warrant a tighter 60 s).
    pub stabilization: SimDuration,
}

impl Default for HpaConfig {
    fn default() -> Self {
        HpaConfig {
            target_utilization: 0.8,
            min_replicas: 1,
            max_replicas: 8,
            stabilization: SimDuration::from_secs(60),
        }
    }
}

/// The Kubernetes HPA algorithm for one service:
/// `desired = ceil(ready × utilisation / target)`, scaling out
/// immediately and scaling in only as far as the stabilisation window
/// allows.
#[derive(Debug, Clone)]
pub struct HpaController {
    service: ServiceId,
    config: HpaConfig,
    probe: UtilizationProbe,
    /// Trailing `(time, desired)` recommendations for stabilisation.
    history: Vec<(SimTime, usize)>,
}

impl HpaController {
    /// Creates an HPA managing `service`.
    pub fn new(service: ServiceId, config: HpaConfig) -> Self {
        HpaController {
            service,
            config,
            probe: UtilizationProbe::new(),
            history: Vec::new(),
        }
    }

    /// The managed service.
    pub fn service(&self) -> ServiceId {
        self.service
    }

    /// Raw (unclamped) recommendation `ceil(ready × util / target)`, or
    /// `None` when it is undefined: no ready replicas, or a non-finite
    /// utilisation reading (probe with no samples). A NaN used to flow
    /// through `ceil() as usize` into `0`, clamp to `min_replicas`, and
    /// poison the stabilisation history with a bogus scale-to-minimum
    /// recommendation; now the control period is skipped instead.
    fn raw_desired(ready: usize, util: f64, target: f64) -> Option<usize> {
        if ready == 0 || !util.is_finite() {
            return None;
        }
        Some((ready as f64 * util / target).ceil().max(0.0) as usize)
    }

    /// Start (inclusive) of the stabilisation window at `now`: a
    /// recommendation exactly `stabilization` old is still binding, and
    /// during the startup phase (`now < stabilization`) the window spans
    /// the whole run.
    fn keep_from(now: SimTime, stabilization: SimDuration) -> SimTime {
        SimTime::ZERO
            + now
                .saturating_since(SimTime::ZERO)
                .saturating_sub_or_zero(stabilization)
    }
}

impl Controller for HpaController {
    fn control(&mut self, world: &mut World, now: SimTime) {
        let util = self.probe.read(world, self.service, now);
        let ready = world.ready_replicas(self.service).len();
        let Some(raw) = Self::raw_desired(ready, util, self.config.target_utilization) else {
            return; // nothing ready yet, or no usable utilisation sample
        };
        let desired = raw.clamp(self.config.min_replicas, self.config.max_replicas);
        self.history.push((now, desired));
        let keep_from = Self::keep_from(now, self.config.stabilization);
        self.history.retain(|&(t, _)| t >= keep_from);

        // Include replicas still starting so we don't over-provision while
        // pods boot.
        let live = world.all_replicas(self.service).len();
        if desired > live {
            for _ in live..desired {
                if world.add_replica(self.service).is_err() {
                    break; // cluster full
                }
            }
        } else if desired < live {
            // Scale in no further than the stabilised (max) recommendation.
            let floor = self
                .history
                .iter()
                .map(|&(_, d)| d)
                .max()
                .unwrap_or(desired)
                .max(self.config.min_replicas);
            let mut excess = live.saturating_sub(floor);
            while excess > 0 {
                if world
                    .drain_replica(self.service, self.config.min_replicas)
                    .is_none()
                {
                    break;
                }
                excess -= 1;
            }
        }
    }

    fn name(&self) -> &str {
        "kubernetes-hpa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn world() -> (World, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_ms(1_000),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(1));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(cluster::Millicores::from_cores(1))
                .threads(16)
                .on(rt, Behavior::leaf(Dist::constant_ms(4))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        (w, svc, rt)
    }

    /// Drives load and HPA together; returns ready-replica counts per tick.
    fn drive(
        w: &mut World,
        rt: RequestTypeId,
        hpa: &mut HpaController,
        secs: u64,
        gap_ms: u64,
    ) -> Vec<usize> {
        let mut counts = Vec::new();
        let mut at = 0u64;
        for tick in 1..=secs {
            let end = tick * 1000;
            if gap_ms > 0 {
                while at < end {
                    at += gap_ms;
                    w.inject_at(t(at), rt);
                }
            }
            w.run_until(t(end));
            if tick % 15 == 0 {
                hpa.control(w, t(end));
            }
            counts.push(w.ready_replicas(hpa.service()).len());
        }
        counts
    }

    #[test]
    fn scales_out_under_load_and_in_after_idle() {
        let (mut w, svc, rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                stabilization: SimDuration::from_secs(30),
                ..Default::default()
            },
        );
        // 4 ms demand every 3 ms ⇒ ρ ≈ 1.3 on one core: must scale out.
        let counts = drive(&mut w, rt, &mut hpa, 120, 3);
        let peak = *counts.iter().max().unwrap();
        assert!(peak >= 2, "HPA should add replicas under overload: {peak}");
        // Now idle: scale back toward the minimum.
        let counts = drive(&mut w, rt, &mut hpa, 180, 0);
        assert_eq!(
            *counts.last().unwrap(),
            1,
            "idle system drains to min_replicas"
        );
    }

    #[test]
    fn respects_max_replicas() {
        let (mut w, svc, rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                max_replicas: 2,
                ..Default::default()
            },
        );
        let counts = drive(&mut w, rt, &mut hpa, 120, 1); // heavy overload
        assert!(counts.iter().all(|&c| c <= 2));
        assert_eq!(*counts.last().unwrap(), 2);
    }

    /// Regression: a NaN utilisation reading used to become `raw = 0` (via
    /// `NaN.ceil() as usize`), clamp to `min_replicas`, and enter the
    /// stabilisation history as a spurious scale-to-minimum vote. The
    /// control period is now skipped instead.
    #[test]
    fn nan_or_absent_utilization_skips_the_control_period() {
        assert_eq!(HpaController::raw_desired(3, f64::NAN, 0.8), None);
        assert_eq!(HpaController::raw_desired(3, f64::INFINITY, 0.8), None);
        assert_eq!(HpaController::raw_desired(0, 0.5, 0.8), None);
        // Sanity on the defined cases, including a negative reading which
        // must floor at zero rather than wrap through `as usize`.
        assert_eq!(HpaController::raw_desired(4, 0.9, 0.8), Some(5));
        assert_eq!(HpaController::raw_desired(2, 0.0, 0.8), Some(0));
        assert_eq!(HpaController::raw_desired(2, -0.5, 0.8), Some(0));
    }

    /// Boundary: during the startup phase (`now < stabilization`) nothing
    /// is pruned, and a recommendation exactly `stabilization` old is
    /// retained (inclusive window edge) while anything older is dropped.
    #[test]
    fn stabilization_window_edges_are_inclusive_and_startup_safe() {
        let stab = SimDuration::from_secs(30);
        // Startup phase: the window clamps to the run start.
        assert_eq!(
            HpaController::keep_from(SimTime::from_secs(10), stab),
            SimTime::ZERO
        );
        assert_eq!(
            HpaController::keep_from(SimTime::from_secs(30), stab),
            SimTime::ZERO
        );
        // Steady state: entries exactly `stabilization` old sit on the
        // inclusive edge.
        assert_eq!(
            HpaController::keep_from(SimTime::from_secs(40), stab),
            SimTime::from_secs(10)
        );

        // End-to-end through control(): an idle world yields finite (zero)
        // utilisation, so every period records a recommendation.
        let (mut w, svc, _rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                stabilization: stab,
                ..Default::default()
            },
        );
        for secs in [10u64, 20, 30] {
            w.run_until(SimTime::from_secs(secs));
            hpa.control(&mut w, SimTime::from_secs(secs));
        }
        assert_eq!(hpa.history.len(), 3, "startup phase must not prune");
        // At t = 40 s the t = 10 s entry is exactly 30 s old: retained.
        w.run_until(SimTime::from_secs(40));
        hpa.control(&mut w, SimTime::from_secs(40));
        assert_eq!(hpa.history.len(), 4, "edge entry is inside the window");
        assert_eq!(hpa.history[0].0, SimTime::from_secs(10));
        // At t = 45 s it is 35 s old: pruned (along with nothing else).
        w.run_until(SimTime::from_secs(45));
        hpa.control(&mut w, SimTime::from_secs(45));
        assert_eq!(hpa.history[0].0, SimTime::from_secs(20));
    }

    #[test]
    fn stabilization_delays_scale_in() {
        let (mut w, svc, rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                stabilization: SimDuration::from_secs(120),
                ..Default::default()
            },
        );
        drive(&mut w, rt, &mut hpa, 120, 3); // scale out
        let after_burst = w.ready_replicas(svc).len();
        assert!(after_burst >= 2);
        // 30 idle seconds: inside the stabilisation window → no scale-in.
        drive(&mut w, rt, &mut hpa, 30, 0);
        assert_eq!(w.ready_replicas(svc).len(), after_burst);
    }
}
