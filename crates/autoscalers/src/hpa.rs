//! Kubernetes Horizontal Pod Autoscaling (rule-based replica scaling).

use microsim::World;
use sim_core::{SimDuration, SimTime};
use sora_core::{Controller, UtilizationProbe};
use telemetry::ServiceId;

/// HPA tuning, mirroring the upstream defaults the paper configures
/// (scale at 80 % CPU; 15 s control period is supplied by the runner).
#[derive(Debug, Clone, Copy)]
pub struct HpaConfig {
    /// Target mean CPU utilisation (0..1); the paper's rule is
    /// "Pod CPU utilisation > 80 %".
    pub target_utilization: f64,
    /// Replica floor.
    pub min_replicas: usize,
    /// Replica ceiling.
    pub max_replicas: usize,
    /// Scale-*down* stabilisation: act on the maximum desired replica
    /// count seen over this trailing window (kubernetes defaults to 5 min;
    /// the paper's 12-minute runs warrant a tighter 60 s).
    pub stabilization: SimDuration,
}

impl Default for HpaConfig {
    fn default() -> Self {
        HpaConfig {
            target_utilization: 0.8,
            min_replicas: 1,
            max_replicas: 8,
            stabilization: SimDuration::from_secs(60),
        }
    }
}

/// The Kubernetes HPA algorithm for one service:
/// `desired = ceil(ready × utilisation / target)`, scaling out
/// immediately and scaling in only as far as the stabilisation window
/// allows.
#[derive(Debug, Clone)]
pub struct HpaController {
    service: ServiceId,
    config: HpaConfig,
    probe: UtilizationProbe,
    /// Trailing `(time, desired)` recommendations for stabilisation.
    history: Vec<(SimTime, usize)>,
}

impl HpaController {
    /// Creates an HPA managing `service`.
    pub fn new(service: ServiceId, config: HpaConfig) -> Self {
        HpaController {
            service,
            config,
            probe: UtilizationProbe::new(),
            history: Vec::new(),
        }
    }

    /// The managed service.
    pub fn service(&self) -> ServiceId {
        self.service
    }
}

impl Controller for HpaController {
    fn control(&mut self, world: &mut World, now: SimTime) {
        let util = self.probe.read(world, self.service, now);
        let ready = world.ready_replicas(self.service).len();
        if ready == 0 {
            return; // nothing ready yet (pods still starting)
        }
        let raw = (ready as f64 * util / self.config.target_utilization).ceil() as usize;
        let desired = raw.clamp(self.config.min_replicas, self.config.max_replicas);
        self.history.push((now, desired));
        let cutoff = now.saturating_since(SimTime::ZERO);
        let keep_from = if cutoff > self.config.stabilization {
            SimTime::ZERO + (cutoff - self.config.stabilization)
        } else {
            SimTime::ZERO
        };
        self.history.retain(|&(t, _)| t >= keep_from);

        // Include replicas still starting so we don't over-provision while
        // pods boot.
        let live = world.all_replicas(self.service).len();
        if desired > live {
            for _ in live..desired {
                if world.add_replica(self.service).is_err() {
                    break; // cluster full
                }
            }
        } else if desired < live {
            // Scale in no further than the stabilised (max) recommendation.
            let floor = self
                .history
                .iter()
                .map(|&(_, d)| d)
                .max()
                .unwrap_or(desired)
                .max(self.config.min_replicas);
            let mut excess = live.saturating_sub(floor);
            while excess > 0 {
                if world
                    .drain_replica(self.service, self.config.min_replicas)
                    .is_none()
                {
                    break;
                }
                excess -= 1;
            }
        }
    }

    fn name(&self) -> &str {
        "kubernetes-hpa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn world() -> (World, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_ms(1_000),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(1));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(cluster::Millicores::from_cores(1))
                .threads(16)
                .on(rt, Behavior::leaf(Dist::constant_ms(4))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        (w, svc, rt)
    }

    /// Drives load and HPA together; returns ready-replica counts per tick.
    fn drive(
        w: &mut World,
        rt: RequestTypeId,
        hpa: &mut HpaController,
        secs: u64,
        gap_ms: u64,
    ) -> Vec<usize> {
        let mut counts = Vec::new();
        let mut at = 0u64;
        for tick in 1..=secs {
            let end = tick * 1000;
            if gap_ms > 0 {
                while at < end {
                    at += gap_ms;
                    w.inject_at(t(at), rt);
                }
            }
            w.run_until(t(end));
            if tick % 15 == 0 {
                hpa.control(w, t(end));
            }
            counts.push(w.ready_replicas(hpa.service()).len());
        }
        counts
    }

    #[test]
    fn scales_out_under_load_and_in_after_idle() {
        let (mut w, svc, rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                stabilization: SimDuration::from_secs(30),
                ..Default::default()
            },
        );
        // 4 ms demand every 3 ms ⇒ ρ ≈ 1.3 on one core: must scale out.
        let counts = drive(&mut w, rt, &mut hpa, 120, 3);
        let peak = *counts.iter().max().unwrap();
        assert!(peak >= 2, "HPA should add replicas under overload: {peak}");
        // Now idle: scale back toward the minimum.
        let counts = drive(&mut w, rt, &mut hpa, 180, 0);
        assert_eq!(
            *counts.last().unwrap(),
            1,
            "idle system drains to min_replicas"
        );
    }

    #[test]
    fn respects_max_replicas() {
        let (mut w, svc, rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                max_replicas: 2,
                ..Default::default()
            },
        );
        let counts = drive(&mut w, rt, &mut hpa, 120, 1); // heavy overload
        assert!(counts.iter().all(|&c| c <= 2));
        assert_eq!(*counts.last().unwrap(), 2);
    }

    #[test]
    fn stabilization_delays_scale_in() {
        let (mut w, svc, rt) = world();
        let mut hpa = HpaController::new(
            svc,
            HpaConfig {
                stabilization: SimDuration::from_secs(120),
                ..Default::default()
            },
        );
        drive(&mut w, rt, &mut hpa, 120, 3); // scale out
        let after_burst = w.ready_replicas(svc).len();
        assert!(after_burst >= 2);
        // 30 idle seconds: inside the stabilisation window → no scale-in.
        drive(&mut w, rt, &mut hpa, 30, 0);
        assert_eq!(w.ready_replicas(svc).len(), after_burst);
    }
}
