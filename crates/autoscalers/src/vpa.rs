//! Kubernetes Vertical Pod Autoscaling (rule-based CPU-limit resizing).

use cluster::Millicores;
use microsim::World;
use sim_core::{SimDuration, SimTime};
use sora_core::{Controller, UtilizationProbe};
use telemetry::ServiceId;

/// VPA tuning.
#[derive(Debug, Clone, Copy)]
pub struct VpaConfig {
    /// Grow the limit when utilisation exceeds this.
    pub high_utilization: f64,
    /// Shrink the limit when utilisation falls below this.
    pub low_utilization: f64,
    /// Smallest allowed per-pod limit.
    pub min_limit: Millicores,
    /// Largest allowed per-pod limit.
    pub max_limit: Millicores,
    /// Resize quantum (limits move in whole steps, like recommender
    /// buckets).
    pub step: Millicores,
    /// Minimum time between resizes.
    pub cooldown: SimDuration,
}

impl Default for VpaConfig {
    fn default() -> Self {
        VpaConfig {
            high_utilization: 0.8,
            low_utilization: 0.3,
            min_limit: Millicores::from_cores(1),
            max_limit: Millicores::from_cores(4),
            step: Millicores::from_cores(1),
            cooldown: SimDuration::from_secs(30),
        }
    }
}

/// Rule-based vertical scaling of one service's CPU limit: step the limit
/// up when the pods run hot, step it down when they idle. This is the
/// threshold-based vertical scaler the paper pairs with both ConScale and
/// Sora in §5.2's second comparison.
#[derive(Debug, Clone)]
pub struct VpaController {
    service: ServiceId,
    config: VpaConfig,
    probe: UtilizationProbe,
    last_resize: Option<SimTime>,
}

impl VpaController {
    /// Creates a VPA managing `service`.
    pub fn new(service: ServiceId, config: VpaConfig) -> Self {
        VpaController {
            service,
            config,
            probe: UtilizationProbe::new(),
            last_resize: None,
        }
    }

    /// The managed service.
    pub fn service(&self) -> ServiceId {
        self.service
    }

    fn cooled_down(&self, now: SimTime) -> bool {
        self.last_resize
            .is_none_or(|t| now.saturating_since(t) >= self.config.cooldown)
    }
}

impl Controller for VpaController {
    fn control(&mut self, world: &mut World, now: SimTime) {
        let util = self.probe.read(world, self.service, now);
        if !self.cooled_down(now) {
            return;
        }
        let current = world.cpu_limit(self.service);
        let desired = if util > self.config.high_utilization {
            (current + self.config.step).min(self.config.max_limit)
        } else if util < self.config.low_utilization {
            current
                .saturating_sub(self.config.step)
                .max(self.config.min_limit)
        } else {
            current
        };
        if desired != current && world.set_cpu_limit(self.service, desired).is_ok() {
            self.last_resize = Some(now);
        }
    }

    fn name(&self) -> &str {
        "kubernetes-vpa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn world() -> (World, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(1));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("api")
                .cpu(Millicores::from_cores(1))
                .threads(32)
                .on(rt, Behavior::leaf(Dist::constant_ms(4))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        (w, svc, rt)
    }

    fn drive(w: &mut World, rt: RequestTypeId, vpa: &mut VpaController, secs: u64, gap_ms: u64) {
        let mut at = 0u64;
        for tick in 1..=secs {
            let end = tick * 1000;
            if gap_ms > 0 {
                while at < end {
                    at += gap_ms;
                    w.inject_at(t(at), rt);
                }
            }
            w.run_until(t(end));
            if tick % 15 == 0 {
                vpa.control(w, t(end));
            }
        }
    }

    #[test]
    fn grows_limit_under_load_and_shrinks_when_idle() {
        let (mut w, svc, rt) = world();
        let mut vpa = VpaController::new(
            svc,
            VpaConfig {
                cooldown: SimDuration::from_secs(15),
                ..Default::default()
            },
        );
        drive(&mut w, rt, &mut vpa, 90, 3); // ρ ≈ 1.3 on 1 core
        let hot = w.cpu_limit(svc);
        assert!(hot >= Millicores::from_cores(2), "limit should grow: {hot}");
        drive(&mut w, rt, &mut vpa, 120, 0); // idle
        assert_eq!(
            w.cpu_limit(svc),
            Millicores::from_cores(1),
            "idle shrinks to min"
        );
    }

    #[test]
    fn honours_bounds_and_cooldown() {
        let (mut w, svc, rt) = world();
        let cfg = VpaConfig {
            max_limit: Millicores::from_cores(2),
            cooldown: SimDuration::from_secs(3_600), // effectively one resize
            ..Default::default()
        };
        let mut vpa = VpaController::new(svc, cfg);
        drive(&mut w, rt, &mut vpa, 120, 1);
        // One step only (cooldown), and within the 2-core cap.
        assert_eq!(w.cpu_limit(svc), Millicores::from_cores(2));
    }
}
