//! A FIRM-style fine-grained hardware resource manager.

use cluster::Millicores;
use microsim::World;
use scg::LocalizeConfig;
use sim_core::{SimDuration, SimTime};
use sora_core::{Controller, Monitor};
use telemetry::ServiceId;

/// FIRM-style manager tuning.
#[derive(Debug, Clone)]
pub struct FirmConfig {
    /// Services under management (candidates for reprovisioning).
    pub services: Vec<ServiceId>,
    /// Localisation policy for picking the critical instance.
    pub localize: LocalizeConfig,
    /// Scale the critical service up when its utilisation exceeds this.
    pub high_utilization: f64,
    /// Also scale the critical service up when its span p99 exceeds this
    /// many milliseconds (FIRM's SLO-violation trigger); `None` disables
    /// the latency trigger.
    pub slo_p99_ms: Option<f64>,
    /// Scale a managed service down when its utilisation falls below this.
    pub low_utilization: f64,
    /// CPU floor per pod.
    pub min_limit: Millicores,
    /// CPU ceiling per pod.
    pub max_limit: Millicores,
    /// Reprovisioning quantum.
    pub step: Millicores,
    /// Trace-analysis window.
    pub window: SimDuration,
    /// Minimum time between scale-downs of the same service (scale-ups are
    /// immediate — FIRM reacts fast to SLO violations).
    pub scale_down_cooldown: SimDuration,
}

impl Default for FirmConfig {
    fn default() -> Self {
        FirmConfig {
            services: Vec::new(),
            localize: LocalizeConfig::default(),
            high_utilization: 0.75,
            slo_p99_ms: None,
            low_utilization: 0.3,
            min_limit: Millicores::from_cores(1),
            max_limit: Millicores::from_cores(4),
            step: Millicores::from_cores(1),
            window: SimDuration::from_secs(60),
            scale_down_cooldown: SimDuration::from_secs(60),
        }
    }
}

/// A deterministic rendition of FIRM's hardware-management loop
/// (OSDI '20): localise the critical microservice instance from traces
/// (utilisation screening + per-service/end-to-end correlation — the part
/// FIRM does with an SVM) and reprovision its CPU in fine-grained steps
/// (the part FIRM does with DDPG). What matters for the paper's evaluation
/// is preserved exactly: FIRM finds the right instance and gives it more
/// CPU, but never re-adapts thread or connection pools, so pools sized for
/// the old limit become a bottleneck after scale-up (Fig. 10a).
pub struct FirmController {
    config: FirmConfig,
    monitor: Monitor,
    last_scale_down: std::collections::BTreeMap<ServiceId, SimTime>,
    /// Log of `(time, service, new limit)` scaling actions.
    actions: Vec<(SimTime, ServiceId, Millicores)>,
}

impl FirmController {
    /// Creates a FIRM-style manager.
    pub fn new(config: FirmConfig) -> Self {
        let monitor = Monitor::new(config.window);
        FirmController {
            config,
            monitor,
            last_scale_down: Default::default(),
            actions: Vec::new(),
        }
    }

    /// The scaling-action log.
    pub fn actions(&self) -> &[(SimTime, ServiceId, Millicores)] {
        &self.actions
    }
}

impl Controller for FirmController {
    fn control(&mut self, world: &mut World, now: SimTime) {
        let obs = self.monitor.observe(world, now);
        // Scale *up* the critical service when it runs hot.
        if let Some(critical) = obs.critical_service(&self.config.localize) {
            if self.config.services.contains(&critical) {
                let util = obs.utilization.get(&critical).copied().unwrap_or(0.0);
                let slo_violated = self
                    .config
                    .slo_p99_ms
                    .zip(world.span_p99_ms(critical))
                    .is_some_and(|(slo, p99)| p99 > slo);
                let current = world.cpu_limit(critical);
                if (util > self.config.high_utilization || slo_violated)
                    && current < self.config.max_limit
                {
                    let desired = (current + self.config.step).min(self.config.max_limit);
                    if world.set_cpu_limit(critical, desired).is_ok() {
                        self.actions.push((now, critical, desired));
                    }
                }
            }
        }
        // Scale *down* idle managed services (reclaiming over-provisioning,
        // FIRM's resource-efficiency objective).
        for &service in &self.config.services {
            let util = obs.utilization.get(&service).copied().unwrap_or(0.0);
            let current = world.cpu_limit(service);
            let cooled = self
                .last_scale_down
                .get(&service)
                .is_none_or(|&t| now.saturating_since(t) >= self.config.scale_down_cooldown);
            if util < self.config.low_utilization && current > self.config.min_limit && cooled {
                let desired = current
                    .saturating_sub(self.config.step)
                    .max(self.config.min_limit);
                if world.set_cpu_limit(service, desired).is_ok() {
                    self.last_scale_down.insert(service, now);
                    self.actions.push((now, service, desired));
                }
            }
        }
    }

    fn name(&self) -> &str {
        "firm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// front → worker; the worker saturates its single core.
    fn world() -> (World, ServiceId, ServiceId, RequestTypeId) {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg, SimRng::seed_from(4));
        let rt = RequestTypeId(0);
        let worker_id = ServiceId(1);
        let front = w.add_service(
            ServiceSpec::new("front")
                .cpu(Millicores::from_cores(2))
                .threads(64)
                .on(
                    rt,
                    Behavior::tier(Dist::constant_ms(1), worker_id, Dist::constant_us(500)),
                ),
        );
        w.add_service(
            ServiceSpec::new("worker")
                .cpu(Millicores::from_cores(1))
                .threads(64)
                .on(rt, Behavior::leaf(Dist::lognormal_ms(4.0, 0.3))),
        );
        let rt = w.add_request_type("r", front);
        for svc in [front, worker_id] {
            let pod = w.add_replica(svc).unwrap();
            w.make_ready(pod);
        }
        (w, front, worker_id, rt)
    }

    fn drive(w: &mut World, rt: RequestTypeId, c: &mut FirmController, secs: u64, gap_ms: u64) {
        let mut at = 0u64;
        for tick in 1..=secs {
            let end = tick * 1000;
            if gap_ms > 0 {
                while at < end {
                    at += gap_ms;
                    w.inject_at(t(at), rt);
                }
            }
            w.run_until(t(end));
            if tick % 15 == 0 {
                c.control(w, t(end));
            }
        }
    }

    #[test]
    fn scales_up_the_critical_service_only() {
        let (mut w, front, worker, rt) = world();
        let mut firm = FirmController::new(FirmConfig {
            services: vec![front, worker],
            localize: LocalizeConfig {
                min_on_path: 10,
                ..Default::default()
            },
            ..Default::default()
        });
        drive(&mut w, rt, &mut firm, 90, 3); // ρ ≈ 1.4 at the worker
        assert!(
            w.cpu_limit(worker) >= Millicores::from_cores(2),
            "worker (critical) must be scaled up: {}",
            w.cpu_limit(worker)
        );
        assert!(
            firm.actions().iter().any(|&(_, s, _)| s == worker),
            "actions recorded for the worker"
        );
    }

    #[test]
    fn reclaims_idle_capacity() {
        let (mut w, front, worker, rt) = world();
        w.set_cpu_limit(worker, Millicores::from_cores(4)).unwrap();
        let mut firm = FirmController::new(FirmConfig {
            services: vec![front, worker],
            localize: LocalizeConfig {
                min_on_path: 10,
                ..Default::default()
            },
            scale_down_cooldown: SimDuration::from_secs(15),
            ..Default::default()
        });
        drive(&mut w, rt, &mut firm, 120, 0); // fully idle
        assert_eq!(
            w.cpu_limit(worker),
            Millicores::from_cores(1),
            "idle limit reclaimed"
        );
    }

    #[test]
    fn never_exceeds_the_ceiling() {
        let (mut w, front, worker, rt) = world();
        let mut firm = FirmController::new(FirmConfig {
            services: vec![front, worker],
            localize: LocalizeConfig {
                min_on_path: 10,
                ..Default::default()
            },
            max_limit: Millicores::from_cores(2),
            ..Default::default()
        });
        drive(&mut w, rt, &mut firm, 150, 1); // massive overload
        assert!(w.cpu_limit(worker) <= Millicores::from_cores(2));
    }
}
// (tests continue below)
#[cfg(test)]
mod slo_tests {
    use super::*;
    use microsim::{Behavior, ServiceSpec, WorldConfig};
    use sim_core::{Dist, SimRng};
    use telemetry::RequestTypeId;

    /// The latency trigger fires even while CPU utilisation looks moderate:
    /// a 1-core worker at ~60 % utilisation whose p99 breaches the SLO.
    #[test]
    fn slo_trigger_scales_up_without_high_utilization() {
        let cfg = WorldConfig {
            net_delay: Dist::constant_us(0),
            replica_startup: Dist::constant_us(0),
            ..WorldConfig::default()
        };
        let mut w = microsim::World::new(cfg, SimRng::seed_from(8));
        let rt = RequestTypeId(0);
        let svc = w.add_service(
            ServiceSpec::new("worker")
                .cpu(cluster::Millicores::from_cores(1))
                .threads(1) // queueing inflates p99 while CPU idles between bursts
                .on(rt, Behavior::leaf(Dist::constant_ms(30))),
        );
        let rt = w.add_request_type("r", svc);
        let pod = w.add_replica(svc).unwrap();
        w.make_ready(pod);
        let mut firm = FirmController::new(FirmConfig {
            services: vec![svc],
            localize: LocalizeConfig {
                min_on_path: 10,
                ..Default::default()
            },
            high_utilization: 0.99, // CPU trigger effectively off
            slo_p99_ms: Some(50.0),
            ..Default::default()
        });
        // Bursts of 3 every 100 ms: CPU ~90 %, but the 1-thread queue pushes
        // the third request of each burst to ~90 ms.
        for burst in 0..600u64 {
            for _ in 0..3 {
                w.inject_at(sim_core::SimTime::from_millis(burst * 100), rt);
            }
        }
        for tick in 1..=4u64 {
            w.run_until(sim_core::SimTime::from_secs(tick * 15));
            firm.control(&mut w, sim_core::SimTime::from_secs(tick * 15));
        }
        assert!(
            w.cpu_limit(svc) > cluster::Millicores::from_cores(1),
            "p99 breach must scale the service up: limit {}",
            w.cpu_limit(svc)
        );
        assert!(w.span_p99_ms(svc).unwrap() > 50.0);
    }
}
