//! Baseline hardware-only autoscalers.
//!
//! The paper evaluates Sora as a layer over three hardware-only scaling
//! strategies, all reproduced here against the simulated cluster:
//!
//! * [`HpaController`] — Kubernetes Horizontal Pod Autoscaling: rule-based
//!   replica scaling on CPU utilisation (scale out fast, scale in behind a
//!   stabilisation window);
//! * [`VpaController`] — Kubernetes Vertical Pod Autoscaling: rule-based
//!   per-pod CPU-limit resizing;
//! * [`FirmController`] — a FIRM-style fine-grained manager: critical
//!   service localisation from traces plus per-service vertical CPU
//!   scaling. The original FIRM (OSDI '20) drives this policy with an
//!   SVM + RL pipeline; the paper uses it purely as "the hardware-only
//!   autoscaler that picks the right instance but never touches soft
//!   resources", which is the behaviour this deterministic rendition
//!   preserves (see DESIGN.md, substitution table).
//!
//! None of them adapts thread or connection pools — that gap is precisely
//! what the paper demonstrates (Figs. 1, 10, 12) and what Sora fills.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod firm;
mod hpa;
mod vpa;

pub use firm::{FirmConfig, FirmController};
pub use hpa::{HpaConfig, HpaController};
pub use vpa::{VpaConfig, VpaController};
