#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run before sending a PR; CI mirrors these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> ring/scan equivalence proptests (--features reference-scan)"
cargo test -q -p telemetry --features reference-scan ring_equivalence

echo "==> canned scenario determinism (byte-identical metrics vs golden)"
cargo build -q --release -p sora-bench --bin run_scenario
cp results/scenario_short.json /tmp/scenario_short_golden.json
./target/release/run_scenario scenarios/short.json > /tmp/scenario_short_stdout.txt
python3 - <<'EOF'
import json, sys
def strip(d):  # perf blocks carry wall-clock timings and may differ run to run
    return {k: v for k, v in d.items() if k != "perf"} if isinstance(d, dict) else d
new = strip(json.load(open("results/scenario_short.json")))
gold = strip(json.load(open("/tmp/scenario_short_golden.json")))
if new != gold:
    sys.exit("scenario_short metrics diverged from the committed golden")
EOF
mv /tmp/scenario_short_golden.json results/scenario_short.json
rm -f /tmp/scenario_short_stdout.txt

echo "==> fault_resilience smoke (determinism across --jobs)"
# Smoke/quick runs overwrite the committed full-run result files; stash and
# restore them so the hygiene gate leaves the tree clean.
cp results/fault_resilience.json /tmp/fault_resilience_golden.json
cargo build -q --release -p sora-bench --bin fault_resilience
./target/release/fault_resilience --smoke --jobs 1 2>/dev/null > /tmp/fault_smoke_j1.txt
./target/release/fault_resilience --smoke --jobs 4 2>/dev/null > /tmp/fault_smoke_j4.txt
diff /tmp/fault_smoke_j1.txt /tmp/fault_smoke_j4.txt \
  || { echo "fault_resilience output differs between --jobs 1 and --jobs 4"; exit 1; }
rm -f /tmp/fault_smoke_j4.txt

echo "==> scale smoke (timing wheel vs heap, determinism across --jobs, audited)"
# ~500 generated services under 50k users, run on BOTH event-queue engines
# with in-binary equality asserts, fully audited. The canonical stdout is
# diffed byte-for-byte across worker counts, and the saved result file is
# checked against the expected BENCH_scale.json schema.
cp results/BENCH_scale.json /tmp/BENCH_scale_golden.json
cargo build -q --release -p sora-bench --features audit --bin scale
./target/release/scale --smoke --jobs 1 2>/dev/null > /tmp/scale_smoke_j1.txt
./target/release/scale --smoke --jobs 4 2>/dev/null > /tmp/scale_smoke_j4.txt
diff /tmp/scale_smoke_j1.txt /tmp/scale_smoke_j4.txt \
  || { echo "scale output differs between --jobs 1 and --jobs 4"; exit 1; }
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_scale.json"))
data = doc["data"]
point_keys = {
    "point", "spans_per_request", "wheel", "heap", "engines_identical",
    "events_per_sec_speedup", "hot_loop_pending", "hot_loop_ops",
    "hot_loop_wheel_slab", "hot_loop_heap_box", "hot_loop_speedup",
}
engine_keys = {"counters", "events_per_sec", "bytes_per_request",
               "allocs_per_request", "wall_secs"}
counter_keys = {"completed", "dropped", "events", "requests", "spans",
                "p99_ms_bits"}
try:
    assert {"trace", "smoke", "steady_state", "points"} <= set(data), "top-level keys"
    assert data["steady_state"]["allocs"] == 0, "steady-state churn allocated"
    assert len(data["points"]) >= 1, "no points"
    for p in data["points"]:
        assert set(p) == point_keys, f"point keys drifted: {sorted(set(p) ^ point_keys)}"
        assert p["engines_identical"] is True, "engines diverged"
        for eng in ("wheel", "heap"):
            assert set(p[eng]) == engine_keys, f"{eng} keys drifted"
            assert set(p[eng]["counters"]) == counter_keys, f"{eng} counters drifted"
except AssertionError as e:
    sys.exit(f"BENCH_scale.json schema drift: {e}")
EOF
rm -f /tmp/scale_smoke_j1.txt /tmp/scale_smoke_j4.txt
mv /tmp/BENCH_scale_golden.json results/BENCH_scale.json

echo "==> par_scale smoke (sharded engine byte-identity across shard counts, audited)"
# A 500-service world under a canned fault schedule (replica crash with
# restart, CPU pressure, telemetry blackout), fully audited, run at 1 and
# 4 shards. The canonical digest — counters, drop breakdown, fault log and
# order-sensitive stream hashes — must be byte-identical: the conservative
# window engine's partition is unobservable (DESIGN §14). The committed
# full-run artifact is then schema-checked, including the headline claims.
cargo build -q --release -p sora-bench --features audit --bin par_scale
./target/release/par_scale --smoke --shards 1 2>/dev/null > /tmp/par_smoke_s1.txt
./target/release/par_scale --smoke --shards 4 2>/dev/null > /tmp/par_smoke_s4.txt
diff /tmp/par_smoke_s1.txt /tmp/par_smoke_s4.txt \
  || { echo "par_scale digest differs between --shards 1 and --shards 4"; exit 1; }
grep -q "^fault: " /tmp/par_smoke_s1.txt \
  || { echo "par_scale smoke ran without its fault schedule"; exit 1; }
rm -f /tmp/par_smoke_s1.txt /tmp/par_smoke_s4.txt
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_par_scale.json"))
data = doc["data"]
top_keys = {"services", "requests", "sim_secs", "host_cores", "shard_counts",
            "engines_identical", "critical_path_speedup_at_4",
            "wall_speedup_at_4", "runs"}
run_keys = {"shards", "counters", "critical_path_events",
            "critical_path_speedup", "events_per_sec", "wall_secs"}
counter_keys = {"completed", "dropped", "events", "requests", "spans",
                "p99_ms_bits", "completions_fnv", "drops_fnv"}
try:
    assert set(data) == top_keys, f"top-level keys drifted: {sorted(set(data) ^ top_keys)}"
    assert data["engines_identical"] is True, "shard counts diverged"
    assert data["critical_path_speedup_at_4"] >= 1.5, \
        "window schedule exposes < 1.5x parallelism at 4 shards"
    runs = data["runs"]
    assert [r["shards"] for r in runs] == list(data["shard_counts"]), "run order drifted"
    assert runs[0]["shards"] == 1, "sequential oracle missing"
    for r in runs:
        assert set(r) == run_keys, f"run keys drifted: {sorted(set(r) ^ run_keys)}"
        assert set(r["counters"]) == counter_keys, "counters drifted"
        assert r["counters"] == runs[0]["counters"], f"shards={r['shards']} diverged"
    assert runs[0]["critical_path_events"] == runs[0]["counters"]["events"], \
        "one-shard critical path must equal total events"
except AssertionError as e:
    sys.exit(f"BENCH_par_scale.json schema drift: {e}")
EOF

echo "==> net_resilience smoke (network substrate, determinism across --jobs, audited)"
# Partition-heal, slow-link, retry-storm, and reordered-telemetry scenarios
# over the message-passing network, fully audited (loss, duplication, and
# orphaned frames must leave every conservation ledger clean). The canonical
# smoke stdout is byte-diffed across worker counts; the committed full-run
# artifact is schema-checked, including the headline claims: partitions and
# saturation are accounted as such, duplicate telemetry is deduped, and the
# hardened degradation guard holds SLO violations below the no-guard
# ablation under reordered telemetry.
cp results/BENCH_net_resilience.json /tmp/BENCH_net_resilience_golden.json
cargo build -q --release -p sora-bench --features audit --bin net_resilience
./target/release/net_resilience --smoke --jobs 1 2>/dev/null > /tmp/net_smoke_j1.txt
./target/release/net_resilience --smoke --jobs 4 2>/dev/null > /tmp/net_smoke_j4.txt
diff /tmp/net_smoke_j1.txt /tmp/net_smoke_j4.txt \
  || { echo "net_resilience output differs between --jobs 1 and --jobs 4"; exit 1; }
python3 - <<'EOF'
import json, sys
doc = json.load(open("/tmp/BENCH_net_resilience_golden.json"))
data = doc["data"]
labels = ["partition-heal", "slow-link", "retry-storm",
          "telemetry-reorder-guard", "telemetry-reorder-noguard"]
variant_keys = {
    "label", "completed", "dropped", "drop_breakdown", "retry",
    "goodput_rps", "slo_violations", "p95_ms", "p99_ms", "net",
    "telemetry_duplicates_dropped", "frozen_periods",
    "final_thread_limit", "fault_log",
}
net_keys = {"messages", "lost_random", "lost_partitioned", "lost_saturated",
            "duplicated", "call_retries", "orphaned_frames"}
try:
    v = {x["label"]: x for x in data["variants"]}
    assert [x["label"] for x in data["variants"]] == labels, "variant labels drifted"
    for x in data["variants"]:
        assert set(x) == variant_keys, f"variant keys drifted: {sorted(set(x) ^ variant_keys)}"
        assert set(x["net"]) == net_keys, f"net stats keys drifted"
        assert {"net_lost", "net_timed_out"} <= set(x["drop_breakdown"]), "net drop reasons missing"
    assert v["partition-heal"]["net"]["lost_partitioned"] > 0, "partition never dropped a message"
    assert v["partition-heal"]["drop_breakdown"]["net_timed_out"] > 0, "no call-timeout aborts"
    assert v["slow-link"]["net"]["lost_random"] + v["slow-link"]["net"]["lost_saturated"] == 0, \
        "slow link must degrade latency, not lose messages"
    assert v["retry-storm"]["net"]["lost_saturated"] > 0, "retry storm never saturated the link"
    assert v["retry-storm"]["net"]["call_retries"] > 0, "retry storm never resent a call"
    assert v["telemetry-reorder-guard"]["telemetry_duplicates_dropped"] > 0, "no duplicates deduped"
    assert v["telemetry-reorder-guard"]["frozen_periods"] > 0, "guard never froze"
    assert data["degradation_helps"] is True, \
        "hardened guard must hold SLO violations below the no-guard ablation"
except AssertionError as e:
    sys.exit(f"BENCH_net_resilience.json schema drift: {e}")
EOF
rm -f /tmp/net_smoke_j1.txt /tmp/net_smoke_j4.txt
mv /tmp/BENCH_net_resilience_golden.json results/BENCH_net_resilience.json

echo "==> service plane: wire-vs-inprocess bytes, sweep farm kill/resume (sora-server)"
# The control plane's headline invariant: a scenario submitted over the wire
# (TCP submit, and the worker-process farm at any worker count) produces
# byte-identical result JSON to the same scenario run in-process. Then the
# farm is killed mid-sweep with SIGINT and must resume from its cache.
cargo test -q -p sora-server
cargo build -q --release -p sora-server
SRV=./target/release/sora-server
LANE=$(mktemp -d /tmp/sora-server-lane.XXXXXX)

# Cache-key hygiene: a terse spelling of short.json (keys reordered, floats
# as integers, null/default fields omitted) must share its cache key.
python3 - "$LANE" <<'EOF'
import json, sys
spec = json.load(open("scenarios/short.json"))
terse = {k: v for k, v in reversed(list(spec.items())) if v is not None}
terse["max_users"] = int(spec["max_users"])
terse["duration_secs"] = float(spec["duration_secs"])
json.dump(terse, open(sys.argv[1] + "/terse.json", "w"))
EOF
KEY_A=$("$SRV" canon-key scenarios/short.json)
KEY_B=$("$SRV" canon-key "$LANE/terse.json")
[ "$KEY_A" = "$KEY_B" ] \
  || { echo "equivalent scenario spellings got different cache keys: $KEY_A vs $KEY_B"; exit 1; }

# TCP submit returns the exact bytes of the in-process run.
"$SRV" run-local scenarios/short.json > "$LANE/local.json"
PORT=$((20000 + $$ % 20000))
"$SRV" serve --addr 127.0.0.1:$PORT 2>/dev/null &
SRV_PID=$!
for _ in $(seq 1 100); do
  "$SRV" ping --addr 127.0.0.1:$PORT >/dev/null 2>&1 && break
  sleep 0.1
done
"$SRV" submit --addr 127.0.0.1:$PORT scenarios/short.json > "$LANE/remote.json"
kill -INT $SRV_PID 2>/dev/null; wait $SRV_PID || true
cmp "$LANE/local.json" "$LANE/remote.json" \
  || { echo "wire result differs from in-process result"; exit 1; }

# The farm produces those same bytes at --workers 1 and --workers 4.
for s in 101 102 103; do
  sed 's/"seed": 7/"seed": '$s'/' scenarios/short.json > "$LANE/s$s.json"
done
"$SRV" sweep --cache "$LANE/c1" --workers 1 "$LANE"/s10?.json > /dev/null 2>&1
"$SRV" sweep --cache "$LANE/c4" --workers 4 "$LANE"/s10?.json > /dev/null 2>&1
for s in 101 102 103; do
  K=$("$SRV" canon-key "$LANE/s$s.json")
  "$SRV" run-local "$LANE/s$s.json" > "$LANE/inproc.json"
  cmp "$LANE/c1/$K.json" "$LANE/inproc.json" \
    || { echo "farm --workers 1 bytes differ from in-process for seed $s"; exit 1; }
  cmp "$LANE/c4/$K.json" "$LANE/inproc.json" \
    || { echo "farm --workers 4 bytes differ from in-process for seed $s"; exit 1; }
done

# Kill the farm mid-sweep; the flushed partial cache is the resume state.
sed -e 's/"duration_secs": 60/"duration_secs": 300/' -e 's/"max_users": 800.0/"max_users": 2000/' \
  scenarios/short.json > "$LANE/heavy.json"
for s in 201 202 203 204 205 206; do
  sed 's/"seed": 7/"seed": '$s'/' "$LANE/heavy.json" > "$LANE/k$s.json"
done
"$SRV" sweep --cache "$LANE/ck" --workers 1 "$LANE"/k20?.json > "$LANE/sweep1.out" 2>/dev/null &
FARM_PID=$!
for _ in $(seq 1 400); do
  FLUSHED=$(ls "$LANE/ck" 2>/dev/null | grep -c '^[0-9a-f].*\.json$' || true)
  [ "${FLUSHED:-0}" -ge 1 ] && break
  sleep 0.05
done
kill -INT $FARM_PID
FARM_RC=0; wait $FARM_PID || FARM_RC=$?
[ "$FARM_RC" -eq 130 ] || { echo "interrupted farm exited $FARM_RC, expected 130"; exit 1; }
grep -q "interrupted=true" "$LANE/sweep1.out" \
  || { echo "interrupted farm did not report interrupted=true"; exit 1; }
BEFORE=$(ls "$LANE/ck" | grep -c '^[0-9a-f].*\.json$')
[ "$BEFORE" -ge 1 ] && [ "$BEFORE" -lt 6 ] \
  || { echo "kill window missed: $BEFORE of 6 results flushed"; exit 1; }
"$SRV" sweep --cache "$LANE/ck" --workers 1 "$LANE"/k20?.json > "$LANE/sweep2.out" 2>/dev/null \
  || { echo "resumed farm failed"; exit 1; }
grep -q "interrupted=false" "$LANE/sweep2.out" \
  || { echo "resumed farm did not run to completion"; exit 1; }
HITS=$(sed -n 's/.*cache_hits=\([0-9]*\).*/\1/p' "$LANE/sweep2.out")
[ "$HITS" -eq "$BEFORE" ] \
  || { echo "resume reported $HITS cache hits, expected $BEFORE"; exit 1; }
AFTER=$(ls "$LANE/ck" | grep -c '^[0-9a-f].*\.json$')
[ "$AFTER" -eq 6 ] || { echo "resume left $AFTER of 6 results"; exit 1; }
rm -rf "$LANE"

echo "==> audit lane: conservation laws (--features audit)"
# Unit + metamorphic coverage of the audit layer itself.
cargo test -q --features audit
for p in cluster telemetry workload microsim; do
  cargo test -q -p "$p" --features audit audit
done
# The tab01 quick sweep and the canned fault schedule run fully audited:
# any conservation-law violation panics the binary and fails the gate.
cp results/tab01_sampling_mape.json /tmp/tab01_golden.json
cargo build -q --release -p sora-bench --features audit \
  --bin tab01_sampling_mape --bin fault_resilience
./target/release/tab01_sampling_mape --quick > /dev/null
mv /tmp/tab01_golden.json results/tab01_sampling_mape.json
# Auditing must not perturb the simulation: the audited smoke run's stdout
# is byte-identical to the unaudited run saved above.
./target/release/fault_resilience --smoke --jobs 4 2>/dev/null > /tmp/fault_smoke_audit.txt
diff /tmp/fault_smoke_j1.txt /tmp/fault_smoke_audit.txt \
  || { echo "fault_resilience output differs with --features audit"; exit 1; }
rm -f /tmp/fault_smoke_j1.txt /tmp/fault_smoke_audit.txt
mv /tmp/fault_resilience_golden.json results/fault_resilience.json

echo "==> fuzz lane: scenario fuzzing (fixed seeds, audited, deterministic)"
# A fixed seed window through the generator → oracle → shrinker pipeline
# (crates/fuzz, DESIGN.md §15), built with the conservation-law audit
# armed. The canonical report on stdout must be byte-identical across
# worker counts and fully clean; the seeded test-only defect
# (--inject-bad) must be detected by the `injected` oracle and shrunk to
# at most 25% of the original spec, proving the detector → shrinker
# pipeline is live. The committed 10k-seed campaign artifact is
# schema-checked without being re-run.
cargo build -q --release -p sora-fuzz --features audit --bin fuzz
./target/release/fuzz --seeds 0..40 --no-save --jobs 1 2>/dev/null > /tmp/fuzz_j1.json
./target/release/fuzz --seeds 0..40 --no-save --jobs 4 2>/dev/null > /tmp/fuzz_j4.json
diff /tmp/fuzz_j1.json /tmp/fuzz_j4.json \
  || { echo "fuzz report differs between --jobs 1 and --jobs 4"; exit 1; }
grep -q '"clean": 40' /tmp/fuzz_j1.json \
  || { echo "fuzz lane found violations in the fixed seed window"; exit 1; }
rm -f /tmp/fuzz_j1.json /tmp/fuzz_j4.json
python3 - <<'EOF'
import json, sys
doc = json.load(open("results/BENCH_fuzz.json"))
data = doc["data"]
top_keys = {"seed_start", "seed_end", "seeds_run", "clean", "injected",
            "audited", "engine_fingerprint", "findings"}
finding_keys = {"seed", "oracle", "detail", "spec_bytes", "shrunk_bytes",
                "spec", "shrunk"}
try:
    assert set(data) == top_keys, f"top-level keys drifted: {sorted(set(data) ^ top_keys)}"
    assert data["seeds_run"] >= 10_000, "campaign budget shrank below 10k seeds"
    assert data["audited"] is True, "campaign ran without the audit oracle"
    assert data["injected"] is False, "campaign artifact ran with the seeded defect armed"
    assert data["clean"] + len(data["findings"]) == data["seeds_run"], "verdicts don't sum"
    assert not data["findings"], \
        "campaign artifact carries unfixed findings — fix them and re-run the campaign"
    for f in data["findings"]:
        assert set(f) == finding_keys, f"finding keys drifted: {sorted(set(f) ^ finding_keys)}"
        assert 4 * f["shrunk_bytes"] <= f["spec_bytes"], \
            f"seed {f['seed']}: reproducer not shrunk to <= 25%"
except AssertionError as e:
    sys.exit(f"BENCH_fuzz.json schema drift: {e}")
EOF

echo "all checks passed"
