#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run before sending a PR; CI mirrors these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "all checks passed"
