#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run before sending a PR; CI mirrors these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> fault_resilience smoke (determinism across --jobs)"
cargo build -q --release -p sora-bench --bin fault_resilience
./target/release/fault_resilience --smoke --jobs 1 2>/dev/null > /tmp/fault_smoke_j1.txt
./target/release/fault_resilience --smoke --jobs 4 2>/dev/null > /tmp/fault_smoke_j4.txt
diff /tmp/fault_smoke_j1.txt /tmp/fault_smoke_j4.txt \
  || { echo "fault_resilience output differs between --jobs 1 and --jobs 4"; exit 1; }
rm -f /tmp/fault_smoke_j1.txt /tmp/fault_smoke_j4.txt

echo "all checks passed"
