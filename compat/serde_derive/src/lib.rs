//! `#[derive(Serialize, Deserialize)]` for the offline `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes this
//! workspace uses:
//!
//! - structs with named fields, tuple/newtype structs, unit structs
//! - enums with unit, named-field, and tuple variants
//!   (externally tagged, like real serde's default)
//! - container attribute `#[serde(rename_all = "snake_case")]`
//! - field attribute `#[serde(default)]`
//!
//! Anything else fails loudly at compile time rather than silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    rename_all_snake: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    has_default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Attrs {
    serde_default: bool,
    rename_all_snake: bool,
}

/// Consumes leading `#[...]` attribute groups, extracting the serde ones.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (Attrs, usize) {
    let mut attrs = Attrs {
        serde_default: false,
        rename_all_snake: false,
    };
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            panic!("malformed attribute");
        };
        assert_eq!(g.delimiter(), Delimiter::Bracket, "malformed attribute");
        parse_attr_group(&g.stream(), &mut attrs);
        i += 2;
    }
    (attrs, i)
}

fn parse_attr_group(stream: &TokenStream, attrs: &mut Attrs) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let Some(TokenTree::Ident(name)) = toks.first() else {
        return;
    };
    if name.to_string() != "serde" {
        return; // doc comments, #[default], other derives' helpers
    }
    let Some(TokenTree::Group(args)) = toks.get(1) else {
        panic!("bare #[serde] attribute is not supported");
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        let TokenTree::Ident(key) = &inner[j] else {
            panic!("unsupported serde attribute syntax: {}", args.stream());
        };
        match key.to_string().as_str() {
            "default" => {
                attrs.serde_default = true;
                j += 1;
            }
            "rename_all" => {
                let lit = match (&inner[j + 1], &inner[j + 2]) {
                    (TokenTree::Punct(eq), TokenTree::Literal(lit)) if eq.as_char() == '=' => {
                        lit.to_string()
                    }
                    _ => panic!("expected rename_all = \"...\""),
                };
                assert_eq!(
                    lit, "\"snake_case\"",
                    "only rename_all = \"snake_case\" is supported, got {lit}"
                );
                attrs.rename_all_snake = true;
                j += 3;
            }
            other => panic!("unsupported serde attribute `{other}`"),
        }
        if let Some(TokenTree::Punct(p)) = inner.get(j) {
            if p.as_char() == ',' {
                j += 1;
            }
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1; // pub(crate) etc.
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (attrs, mut i) = take_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the serde shim derive ({name})");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(tuple_arity(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        rename_all_snake: attrs.rename_all_snake,
        kind,
    }
}

/// Counts top-level fields of a tuple struct/variant body (angle-bracket
/// aware: `BTreeMap<K, V>` is one field).
fn tuple_arity(stream: &TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut arity = 0;
    let mut any = false;
    for tok in stream.clone() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                any = false;
                continue;
            }
            _ => {}
        }
        any = true;
    }
    if any {
        arity += 1;
    }
    arity
}

fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (attrs, next) = take_attrs(&tokens, i);
        i = skip_visibility(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field {name}, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            has_default: attrs.serde_default,
        });
    }
    fields
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_attrs, next) = take_attrs(&tokens, i); // #[default], docs
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("expected `,` after variant {name}, found {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn external_name(item: &Item, variant: &str) -> String {
    if item.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_json_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(String::from(\"{0}\"), \
                     ::serde::Serialize::to_json_value(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__map)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = external_name(item, &v.name);
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{0} => ::serde::Value::String(String::from(\"{tag}\")),\n",
                        v.name
                    )),
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.insert(String::from(\"{0}\"), \
                                 ::serde::Serialize::to_json_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(String::from(\"{tag}\"), \
                             ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__outer)\n}}\n",
                            vn = v.name,
                            binds = binders.join(", "),
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(String::from(\"{tag}\"), {payload});\n\
                             ::serde::Value::Object(__outer)\n}}\n",
                            vn = v.name,
                            binds = binders.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// `field: <parse>` initialiser for a named field read from `__obj`.
fn named_field_init(owner: &str, f: &Field) -> String {
    let missing = if f.has_default {
        "::core::default::Default::default()".to_string()
    } else {
        format!(
            "::serde::Deserialize::from_json_value(&::serde::Value::Null)\
             .map_err(|_| ::serde::Error::custom(\
             \"missing field `{0}` in {owner}\"))?",
            f.name
        )
    };
    format!(
        "{0}: match __obj.get(\"{0}\") {{\n\
         Some(__v) => ::serde::Deserialize::from_json_value(__v)\
         .map_err(|e| ::serde::Error::custom(\
         format!(\"in {owner}.{0}: {{e}}\")))?,\n\
         None => {missing},\n}},\n",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match __value {{ ::serde::Value::Null => Ok({name}), \
             _ => Err(::serde::Error::custom(\"expected null for {name}\")) }}"
        ),
        Kind::TupleStruct(1) => format!(
            "Ok({name}(::serde::Deserialize::from_json_value(__value)\
             .map_err(|e| ::serde::Error::custom(format!(\"in {name}: {{e}}\")))?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&named_field_init(name, f));
            }
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let tag = external_name(item, &v.name);
                match &v.kind {
                    VariantKind::Unit => {
                        str_arms.push_str(&format!("\"{tag}\" => Ok({name}::{}),\n", v.name))
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&named_field_init(&format!("{name}::{}", v.name), f));
                        }
                        obj_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\
                             \"expected object payload for {name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{\n{inits}}})\n}}\n",
                            vn = v.name,
                        ));
                    }
                    VariantKind::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{tag}\" => Ok({name}::{vn}(\
                         ::serde::Deserialize::from_json_value(__inner)?)),\n",
                        vn = v.name,
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json_value(&__items[{i}])?")
                            })
                            .collect();
                        obj_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\
                             \"expected array payload for {name}::{vn}\"))?;\n\
                             if __items.len() != {n} {{ return Err(\
                             ::serde::Error::custom(\
                             \"wrong payload arity for {name}::{vn}\")); }}\n\
                             Ok({name}::{vn}({items}))\n}}\n",
                            vn = v.name,
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Object(__o) => {{\n\
                 let (__tag, __inner) = __o.single_entry().ok_or_else(|| \
                 ::serde::Error::custom(\
                 \"expected single-key object for {name}\"))?;\n\
                 match __tag {{\n{obj_arms}\
                 __other => Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
                 __other => Err(::serde::Error::custom(\
                 format!(\"expected string or object for {name}, got {{}}\", \
                 __other.kind()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn from_json_value(__value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
