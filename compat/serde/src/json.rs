//! A small self-contained JSON document model: [`Value`], [`Map`],
//! [`Number`], [`Error`], plus a parser and (pretty-)writer.
//!
//! This lives in the `serde` shim so both the derive-generated code and the
//! `serde_json` facade can share one representation.

use std::fmt;

/// Any JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Map),
}

/// A JSON number: stored exactly for integers, as `f64` otherwise.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Number {
    /// The number as `f64` (lossy beyond 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64`, if representable exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if representable exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// A JSON object that preserves insertion order (like `serde_json`'s
/// `preserve_order` feature, which the bench archives rely on for stable
/// diffable output).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts (or replaces) a key, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The sole entry, if the object has exactly one (externally-tagged enums).
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self.entries.as_slice() {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A serialisation or parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            let s = v.to_string();
            out.push_str(&s);
            // Keep floats recognisable as floats so round-trips stay typed.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        // JSON has no NaN/Inf; follow the JavaScript convention.
        Number::Float(_) => out.push_str("null"),
    }
}

impl Value {
    /// Compact single-line rendering.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Two-space-indented rendering.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_compact(&mut s);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a JSON document, requiring nothing but whitespace after it.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        // self.pos is at the `u`.
        self.pos += 1;
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect \uXXXX low half.
            if !self.eat_keyword("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    v = (v << 4) | d;
                    self.pos += 1;
                }
                None => return Err(self.err("expected 4 hex digits")),
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::Float(v)))
        } else if neg {
            let v: i64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::NegInt(v)))
        } else {
            let v: u64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::PosInt(v)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        for doc in [
            r#"null"#,
            r#"true"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null],"c":"x\ny"}"#,
            r#"-42"#,
            r#"3.5"#,
        ] {
            let v = parse(doc).unwrap();
            let mut out = String::new();
            v.write_compact(&mut out);
            assert_eq!(parse(&out).unwrap(), v, "document {doc}");
        }
    }

    #[test]
    fn preserves_u64_precision() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn map_preserves_insertion_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let mut out = String::new();
        v.write_compact(&mut out);
        assert_eq!(out, r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}
