//! Offline stand-in for `serde`, specialised to JSON.
//!
//! The real crates.io `serde`/`serde_json` are unavailable in this
//! network-less build environment, so this crate provides the (small) API
//! subset the workspace actually uses: `Serialize`/`Deserialize` traits, a
//! derive macro for both, and a JSON [`Value`] document model shared with
//! the `serde_json` facade crate.
//!
//! The traits are deliberately JSON-centric rather than format-generic:
//! every serialisation consumer in this repo is a JSON archive under
//! `results/`.

pub mod json;

pub use json::{Error, Map, Number, Value};
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Types that can be turned into a JSON [`Value`].
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match.
    fn from_json_value(value: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            value.kind()
                        ))
                    })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            value.kind()
                        ))
                    })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    Value::Null => Ok(<$t>::NAN), // NaN serialises as null
                    other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_json_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $n => {
                        Ok(($($t::from_json_value(&items[$idx])?,)+))
                    }
                    other => type_err(concat!("array of length ", stringify!($n)), other),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

/// Renders a map key: strings stay themselves, everything else is written
/// compactly (`ServiceId(3)` → `"3"`), matching serde_json's behaviour for
/// integer-like keys.
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_json_value() {
        Value::String(s) => s,
        other => {
            let mut s = String::new();
            other.write_compact(&mut s);
            s
        }
    }
}

/// Parses a map key back: try the raw string first, then re-parse it as a
/// JSON document (for numeric / newtype keys).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_json_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    let v = json::parse(key).map_err(|_| Error::custom(format!("cannot parse map key `{key}`")))?;
    K::from_json_value(&v)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k), v.to_json_value());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_json_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        // Sort keys for deterministic output (HashMap iteration order isn't).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries.into_iter().collect::<Map>().into()
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_json_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_json_value(&42u64.to_json_value()).unwrap(), 42);
        assert_eq!(i32::from_json_value(&(-7i32).to_json_value()).unwrap(), -7);
        assert_eq!(f64::from_json_value(&1.5f64.to_json_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_json_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back = Vec::<(u32, f64)>::from_json_value(&v.to_json_value()).unwrap();
        assert_eq!(v, back);

        let mut m = BTreeMap::new();
        m.insert(7u64, "x".to_string());
        let back = BTreeMap::<u64, String>::from_json_value(&m.to_json_value()).unwrap();
        assert_eq!(m, back);

        let arr = [1.0f64, 2.0, 3.0];
        let back = <[f64; 3]>::from_json_value(&arr.to_json_value()).unwrap();
        assert_eq!(arr, back);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_json_value(&300u64.to_json_value()).is_err());
        assert!(u64::from_json_value(&(-1i64).to_json_value()).is_err());
    }
}
