//! Offline stand-in for `criterion`.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is simple wall-clock timing: warm up briefly, then
//! run timed batches until a sampling budget is spent, and report the mean
//! and best ns/iter.
//!
//! When the binary is invoked without `--bench` (as `cargo test` does for
//! `harness = false` bench targets) each benchmark body runs exactly once
//! as a smoke test, mirroring real criterion's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim times each routine
/// call individually, so the hint only exists for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark registry and runner.
pub struct Criterion {
    smoke_mode: bool,
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            smoke_mode,
            sample_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            smoke_mode: self.smoke_mode,
            sample_budget: self.sample_budget,
            iters: 0,
            elapsed: Duration::ZERO,
            best: Duration::MAX,
        };
        body(&mut b);
        if self.smoke_mode {
            println!("bench {name}: ok (smoke mode, 1 iteration)");
        } else if b.iters > 0 {
            let mean = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!(
                "bench {name}: mean {:.0} ns/iter, best {} ns/iter ({} iters)",
                mean,
                b.best.as_nanos(),
                b.iters
            );
        }
        self
    }
}

/// Times a single benchmark body.
pub struct Bencher {
    smoke_mode: bool,
    sample_budget: Duration,
    iters: u64,
    elapsed: Duration,
    best: Duration,
}

impl Bencher {
    fn record(&mut self, batch: Duration, iters: u64) {
        self.elapsed += batch;
        self.iters += iters;
        let per = batch / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
        if per < self.best {
            self.best = per;
        }
    }

    /// Benchmarks `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.smoke_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate per-call cost.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        // Batch enough calls that timer overhead stays negligible.
        let batch = (Duration::from_micros(200).as_nanos() / once.as_nanos()).max(1) as u64;
        let start = Instant::now();
        while start.elapsed() < self.sample_budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.record(t.elapsed(), batch);
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_mode {
            black_box(routine(setup()));
            return;
        }
        let start = Instant::now();
        while start.elapsed() < self.sample_budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.record(t.elapsed(), 1);
        }
    }
}

/// Groups benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut calls = 0u32;
        let mut c = Criterion {
            smoke_mode: true,
            sample_budget: Duration::from_millis(1),
        };
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_accumulates_iters() {
        let mut c = Criterion {
            smoke_mode: false,
            sample_budget: Duration::from_millis(5),
        };
        c.bench_function("t", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
    }
}
