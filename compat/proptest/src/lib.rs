//! Offline stand-in for `proptest`.
//!
//! Covers the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! range and tuple strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted regression
//! corpus: each test runs a fixed number of cases drawn from a
//! deterministic per-test seed (derived from the test name), so failures
//! reproduce exactly across runs and machines.

use std::ops::{Range, RangeInclusive};

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps single-core CI quick while
        // still exercising the properties.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TestRng {
    /// The generator for case number `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: splitmix64(h ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide) - (self.start as $wide);
                let off = (rng.next_u64() as $wide).rem_euclid(span);
                ((self.start as $wide) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $wide) - (lo as $wide) + 1;
                let off = (rng.next_u64() as $wide).rem_euclid(span);
                ((lo as $wide) + off) as $t
            }
        }
    )*};
}

impl_int_strategy!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($t:ident . $idx:tt),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                self.size.clone().sample(rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Declares property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Asserts a property holds, with optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal, with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges honour their bounds.
        #[test]
        fn ranges_in_bounds(
            n in 3usize..17,
            x in -2.0f64..2.0,
            mut v in crate::collection::vec(1u64..5, 2..6),
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            v.push(1);
            prop_assert!(v.len() >= 3 && v.len() <= 6);
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)), "elems {:?}", v);
        }
    }
}
