//! Offline stand-in for `serde_json`, backed by the `serde` shim's
//! [`Value`] document model.
//!
//! Provides the workspace's used subset: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], [`Map`], [`Value`], [`Error`], and a [`json!`]
//! macro covering literals, arrays, objects with string-literal keys, and
//! arbitrary serialisable expressions.

pub use serde::json::parse;
pub use serde::{Error, Map, Number, Value};

/// Serialises any [`serde::Serialize`] value to a JSON [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json_value()
}

/// Compact JSON text.
///
/// # Errors
///
/// Never fails for this implementation; the `Result` mirrors the real
/// `serde_json` signature so call sites stay identical.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write_compact(&mut out);
    Ok(out)
}

/// Two-space-indented JSON text.
///
/// # Errors
///
/// Never fails for this implementation (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns a parse or shape-mismatch error.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_json_value(&value)
}

/// Reconstructs a `T` from a JSON [`Value`].
///
/// # Errors
///
/// Returns a shape-mismatch error.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_json_value(value)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// ```
/// let v = serde_json::json!({"name": "cart", "sizes": [1, 2, 3], "on": true});
/// assert_eq!(serde_json::to_string(&v).unwrap(),
///            r#"{"name":"cart","sizes":[1,2,3],"on":true}"#);
/// ```
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_array!(@elems [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json_object!(@map __map $($tt)+);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Array element muncher: peels one element (JSON-structured or plain
/// expression) at a time into the accumulator.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    (@elems [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@elems [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_array!(@elems [$($elems,)* $crate::json_internal!(null),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_array!(@elems [$($elems,)* $crate::json_internal!(true),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_array!(@elems [$($elems,)* $crate::json_internal!(false),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_array!(@elems [$($elems,)* $crate::json_internal!([$($arr)*]),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_array!(@elems [$($elems,)* $crate::json_internal!({$($obj)*}),] $($($rest)*)?)
    };
    (@elems [$($elems:expr,)*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array!(@elems [$($elems,)* $crate::to_value(&$next),] $($($rest)*)?)
    };
}

/// Object entry muncher: `"key": <value>` pairs with string-literal keys.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    (@map $map:ident) => {};
    (@map $map:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json_internal!(null));
        $crate::json_object!(@map $map $($($rest)*)?);
    };
    (@map $map:ident $key:literal : true $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json_internal!(true));
        $crate::json_object!(@map $map $($($rest)*)?);
    };
    (@map $map:ident $key:literal : false $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json_internal!(false));
        $crate::json_object!(@map $map $($($rest)*)?);
    };
    (@map $map:ident $key:literal : [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json_internal!([$($arr)*]));
        $crate::json_object!(@map $map $($($rest)*)?);
    };
    (@map $map:ident $key:literal : {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json_internal!({$($obj)*}));
        $crate::json_object!(@map $map $($($rest)*)?);
    };
    (@map $map:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_object!(@map $map $($rest)*);
    };
    (@map $map:ident $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_shapes() {
        let rows = vec![1u64, 2, 3];
        let v = json!({
            "null": null,
            "flag": true,
            "nested": {"a": [1, 2], "b": "x"},
            "rows": rows,
            "arr": [true, null, {"k": 9}],
            "expr": 2 + 3,
        });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"null":null,"flag":true,"nested":{"a":[1,2],"b":"x"},"rows":[1,2,3],"arr":[true,null,{"k":9}],"expr":5}"#
        );
    }

    #[test]
    fn from_str_round_trip() {
        let v: Vec<(u64, f64)> = crate::from_str("[[1,2.5],[3,4.0]]").unwrap();
        assert_eq!(v, vec![(1, 2.5), (3, 4.0)]);
        let text = crate::to_string(&v).unwrap();
        assert_eq!(text, "[[1,2.5],[3,4.0]]");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"a": [1]});
        assert_eq!(
            crate::to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }
}
