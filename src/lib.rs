//! Workspace façade for the Sora (Middleware '23) reproduction.
//!
//! This crate re-exports every member crate under one roof so the runnable
//! examples in `examples/` and the integration tests in `tests/` can address
//! the whole stack with a single dependency. Library users should depend on
//! the individual crates (`sora-core`, `scg`, `microsim`, …) directly.

pub use apps;
pub use autoscalers;
pub use cluster;
pub use microsim;
pub use scg;
pub use sim_core;
pub use sora_core;
pub use telemetry;
pub use topo;
pub use workload;
